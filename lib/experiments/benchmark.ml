module Bstat = Pdf_obs.Bstat
module Fingerprint = Pdf_obs.Fingerprint
module Json = Pdf_obs.Json_text
module Metrics = Pdf_obs.Metrics
module Circuit = Pdf_circuit.Circuit
module Profiles = Pdf_synth.Profiles
module Delay_model = Pdf_paths.Delay_model
module Enumerate = Pdf_paths.Enumerate
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Wsim = Pdf_bitsim.Wsim
module Word = Pdf_values.Word
module Test_pair = Pdf_core.Test_pair
module Justify = Pdf_core.Justify
module Podem = Pdf_core.Podem
module Generators = Pdf_synth.Generators
module Atpg = Pdf_core.Atpg
module Ordering = Pdf_core.Ordering
module Pool = Pdf_par.Pool

type params = {
  circuits : Profiles.t list;
  n_tests : int;
  n_p : int;
  n_p0 : int;
  seed : int;
}

let profile_exn name =
  match Profiles.find name with
  | Some p -> p
  | None -> failwith (Printf.sprintf "unknown circuit profile %S" name)

let default_params =
  {
    circuits = List.map profile_exn [ "b03"; "b09"; "s641" ];
    n_tests = 126;
    n_p = 400;
    n_p0 = 80;
    seed = 2002;
  }

let profiles_of_spec spec =
  if String.trim spec = "" then Ok default_params.circuits
  else
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
        match Profiles.find (String.trim name) with
        | Some p -> collect (p :: acc) rest
        | None ->
          Error
            (Printf.sprintf
               "unknown circuit profile %S (see `pdfatpg profiles`)"
               (String.trim name)))
    in
    collect [] (String.split_on_char ',' spec)

type case = {
  case_name : string;
  units : (string * float) list;
  thunk : unit -> unit;
}

type suite = {
  suite_name : string;
  suite_doc : string;
  cases : params -> case list;
}

(* ------------------------------------------------------------------ *)
(* Shared workload builders                                            *)
(* ------------------------------------------------------------------ *)

let random_tests c ~n ~seed =
  let rng = Pdf_util.Rng.create seed in
  List.init n (fun _ ->
      let pat () =
        Array.init c.Circuit.num_pis (fun _ -> Pdf_util.Rng.bool rng)
      in
      Test_pair.create (pat ()) (pat ()))

type circuit_setup = {
  cs_profile : Profiles.t;
  cs_circuit : Circuit.t;
  cs_faults : Fault_sim.prepared array;
  cs_n0 : int;  (** |P0| *)
  cs_tests : Test_pair.t list;
}

let circuit_setup params profile =
  let c = Profiles.circuit profile in
  let ts =
    Target_sets.build c (Delay_model.lines c) ~n_p:params.n_p
      ~n_p0:params.n_p0
  in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  {
    cs_profile = profile;
    cs_circuit = c;
    cs_faults = faults;
    cs_n0 = List.length ts.Target_sets.p0;
    cs_tests =
      random_tests c ~n:params.n_tests
        ~seed:(params.seed + Hashtbl.hash profile.Profiles.name);
  }

let word_batches n_tests = (n_tests + 62) / 63

(* Gate count above which a profile is treated as huge-tier: only the
   cone-resim cases run, and target-set preparation (quadratic-ish in
   circuit size) is skipped entirely. *)
let huge_gates = 20_000

(* ------------------------------------------------------------------ *)
(* Cone-resim cases: full-pass vs incremental at varying flip widths    *)
(* ------------------------------------------------------------------ *)

(* The workload the incremental engine was built for: a long sequence of
   simulations that each change only [width] PI words — the shape of the
   justify trial loop and the fold/delta scans.  The full-pass variant
   calls [Wsim.simulate] after every flip; the incremental variant
   [assign]s the same word sequence into one persistent [Wsim.Inc.t].
   Identical seeded RNG streams make both variants simulate the same
   words, and setup hard-fails unless their planes agree net for net. *)
let cone_resim_cases params profile c =
  let np = c.Circuit.num_pis in
  let seed = params.seed + Hashtbl.hash profile.Profiles.name in
  let full_mask = Word.lane_mask Word.lanes in
  let rand_word rng =
    let o = ref 0 in
    for i = 0 to Word.lanes - 1 do
      if Pdf_util.Rng.bool rng then o := !o lor (1 lsl i)
    done;
    { Word.zero = lnot !o land full_mask; Word.one = !o }
  in
  let fresh_words rng =
    ( Array.init np (fun _ -> rand_word rng),
      Array.init np (fun _ -> rand_word rng) )
  in
  (* One flip toggles a single lane of one PI's pattern words — the
     granularity of a justify trial assignment (one v1 bit and one v3
     bit).  Lanes are fully definite, so xor-ing both rails in one lane
     swaps 0 <-> 1 there and leaves the other 62 lanes untouched. *)
  let toggle_lane rng (w : Word.t array) pi =
    let b = 1 lsl Pdf_util.Rng.int rng Word.lanes in
    let wd = w.(pi) in
    w.(pi) <- { Word.zero = wd.Word.zero lxor b; one = wd.Word.one lxor b }
  in
  let flip rng ~width w1 w3 =
    for _ = 1 to width do
      let pi = Pdf_util.Rng.int rng np in
      toggle_lane rng w1 pi;
      toggle_lane rng w3 pi
    done
  in
  let flips = 32 in
  (* Equivalence smoke, same hard-fail contract as the packed-vs-scalar
     check: a short flip sequence must leave the incremental planes
     bit-identical to a full pass after every step. *)
  let () =
    let rng = Pdf_util.Rng.create seed in
    let w1, w3 = fresh_words rng in
    let inc = Wsim.Inc.create c ~lanes:Word.lanes in
    for step = 0 to 4 do
      if step > 0 then flip rng ~width:4 w1 w3;
      Wsim.Inc.assign inc ~w1 ~w3;
      let full = Wsim.simulate c ~w1 ~w3 ~lanes:Word.lanes in
      let ip = Wsim.Inc.planes inc in
      for k = 0 to 2 do
        for net = 0 to Circuit.num_nets c - 1 do
          if
            Wsim.word ip ~comp:k ~net <> Wsim.word full ~comp:k ~net
          then
            failwith
              (Printf.sprintf
                 "fault_sim suite: incremental planes differ from full pass \
                  on %s (step %d, comp %d, net %d)"
                 profile.Profiles.name step k net)
        done
      done
    done
  in
  let case ~width ~variant thunk =
    {
      case_name =
        Printf.sprintf "%s/cone_resim_%s_w%d" profile.Profiles.name variant
          width;
      units = [ ("flips", float_of_int flips) ];
      thunk;
    }
  in
  List.concat_map
    (fun width ->
      [
        case ~width ~variant:"full" (fun () ->
            let rng = Pdf_util.Rng.create seed in
            let w1, w3 = fresh_words rng in
            ignore (Wsim.simulate c ~w1 ~w3 ~lanes:Word.lanes : Wsim.planes);
            for _ = 1 to flips do
              flip rng ~width w1 w3;
              ignore (Wsim.simulate c ~w1 ~w3 ~lanes:Word.lanes : Wsim.planes)
            done);
        case ~width ~variant:"inc" (fun () ->
            let rng = Pdf_util.Rng.create seed in
            let w1, w3 = fresh_words rng in
            let inc = Wsim.Inc.create c ~lanes:Word.lanes in
            Wsim.Inc.assign inc ~w1 ~w3;
            for _ = 1 to flips do
              flip rng ~width w1 w3;
              Wsim.Inc.assign inc ~w1 ~w3
            done);
      ])
    [ 1; 8 ]

(* ------------------------------------------------------------------ *)
(* Suites                                                              *)
(* ------------------------------------------------------------------ *)

let fault_sim_suite =
  let cases params =
    List.concat_map
      (fun profile ->
        let cone =
          cone_resim_cases params profile (Profiles.circuit profile)
        in
        (* Huge-tier circuits run only the cone-resim cases: target-set
           preparation is not sized for 100k-gate netlists, and the
           full-matrix kernels would dominate the suite's runtime
           without measuring anything the small tiers don't. *)
        if Circuit.num_gates (Profiles.circuit profile) >= huge_gates then
          cone
        else
        let s = circuit_setup params profile in
        let pool = Pool.default () in
        let matrix packed () =
          let prev = Fault_sim.packed_enabled () in
          Fault_sim.set_packed packed;
          Fun.protect
            ~finally:(fun () -> Fault_sim.set_packed prev)
            (fun () -> Fault_sim.detect_matrix ~pool s.cs_circuit s.cs_tests s.cs_faults)
        in
        (* Equivalence smoke: the packed engine must reproduce the scalar
           reference cell for cell, whatever engine the timed cases then
           run.  This keeps the hard-fail contract of the retired
           standalone fault_sim_bench executable. *)
        if matrix true () <> matrix false () then
          failwith
            (Printf.sprintf
               "fault_sim suite: packed detection differs from scalar on %s"
               profile.Profiles.name);
        let n_faults = Array.length s.cs_faults in
        let name kernel = profile.Profiles.name ^ "/" ^ kernel in
        [
          {
            case_name = name "detect_matrix";
            units =
              [
                ("faults", float_of_int n_faults);
                ("tests", float_of_int params.n_tests);
                ( "words",
                  float_of_int
                    (word_batches params.n_tests
                    * Circuit.num_gates s.cs_circuit) );
              ];
            (* Ambient engine: packed unless PDF_BITSIM=0 — this is the
               case the regression gate watches. *)
            thunk =
              (fun () ->
                ignore
                  (Fault_sim.detect_matrix ~pool s.cs_circuit s.cs_tests
                     s.cs_faults
                    : bool array array));
          };
          {
            case_name = name "detect_matrix_scalar";
            units =
              [
                ("faults", float_of_int n_faults);
                ("tests", float_of_int params.n_tests);
              ];
            thunk = (fun () -> ignore (matrix false () : bool array array));
          };
          {
            case_name = name "detected_by_tests";
            units =
              [
                ("faults", float_of_int n_faults);
                ("tests", float_of_int params.n_tests);
              ];
            thunk =
              (fun () ->
                ignore
                  (Fault_sim.detected_by_tests ~pool s.cs_circuit s.cs_tests
                     s.cs_faults
                    : bool array));
          };
        ]
        @ cone)
      params.circuits
  in
  {
    suite_name = "fault_sim";
    suite_doc =
      "Fault-simulation kernels: detection matrix, test-set union and \
       cone-resim (full-pass vs incremental at small flip widths), \
       ambient engine plus the scalar reference (hard-fails when the \
       engines disagree)";
    cases;
  }

let atpg_suite =
  let cases params =
    List.concat_map
      (fun profile ->
        let s = circuit_setup params profile in
        let name kernel = profile.Profiles.name ^ "/" ^ kernel in
        let faults0 = Array.sub s.cs_faults 0 s.cs_n0 in
        let p0 = List.init s.cs_n0 Fun.id in
        let p1 =
          List.init (Array.length s.cs_faults - s.cs_n0) (fun i ->
              s.cs_n0 + i)
        in
        (* One untimed run of each generator learns the test count, so
           the throughput units are exact (the run is deterministic). *)
        let basic () =
          Atpg.basic s.cs_circuit
            { Atpg.ordering = Ordering.Value_based; seed = params.seed }
            ~faults:faults0
        in
        let enrich () =
          Atpg.enrich s.cs_circuit ~seed:params.seed ~faults:s.cs_faults ~p0
            ~p1
        in
        let basic_tests = List.length (basic ()).Atpg.tests in
        let enrich_tests = List.length (enrich ()).Atpg.tests in
        [
          {
            case_name = name "basic_values";
            units =
              [
                ("tests", float_of_int basic_tests);
                ("faults", float_of_int s.cs_n0);
              ];
            thunk = (fun () -> ignore (basic () : Atpg.result));
          };
          {
            case_name = name "enrich";
            units =
              [
                ("tests", float_of_int enrich_tests);
                ("faults", float_of_int (Array.length s.cs_faults));
              ];
            thunk = (fun () -> ignore (enrich () : Atpg.result));
          };
        ])
      params.circuits
  in
  {
    suite_name = "atpg";
    suite_doc =
      "Test generation: the basic value-ordered procedure over P0 and \
       the full P0 u P1 enrichment run";
    cases;
  }

let paths_suite =
  let cases params =
    List.map
      (fun profile ->
        let c = Profiles.circuit profile in
        let model = Delay_model.lines c in
        let probe =
          Enumerate.enumerate ~mode:Enumerate.Distance_pruned c model
            ~max_paths:params.n_p
        in
        {
          case_name = profile.Profiles.name ^ "/enumerate";
          units =
            [
              ("paths", float_of_int (List.length probe.Enumerate.paths));
              ("steps", float_of_int probe.Enumerate.steps);
            ];
          thunk =
            (fun () ->
              ignore
                (Enumerate.enumerate ~mode:Enumerate.Distance_pruned c model
                   ~max_paths:params.n_p
                  : Enumerate.result));
        })
      params.circuits
  in
  {
    suite_name = "paths";
    suite_doc = "Distance-pruned longest-path enumeration at budget N_P";
    cases;
  }

let justify_suite =
  let cases params =
    let profile_cases =
      List.concat_map
        (fun profile ->
          let s = circuit_setup params profile in
          let name kernel = profile.Profiles.name ^ "/" ^ kernel in
          let engine = Justify.create s.cs_circuit in
          let podem_engine = Podem.create s.cs_circuit in
          let portfolio_engine =
            Justify.Engine.create ~kind:Justify.Portfolio s.cs_circuit
          in
          let k_sim = min 20 (Array.length s.cs_faults) in
          let k_complete = min 10 (Array.length s.cs_faults) in
          (* The "aborts" telemetry unit: failed justifications among the
             timed faults, measured once at setup on fresh engines so the
             number is deterministic in (circuit, seed).  It rides in the
             report's "units" object, which the determinism projection
             keeps — CI gates on it. *)
          let sim_aborts =
            let e = Justify.create s.cs_circuit in
            let rng = Pdf_util.Rng.create params.seed in
            let n = ref 0 in
            for i = 0 to k_sim - 1 do
              if Justify.run e ~rng ~reqs:s.cs_faults.(i).Fault_sim.reqs = None
              then incr n
            done;
            !n
          in
          let podem_aborts =
            let e = Podem.create s.cs_circuit in
            let n = ref 0 in
            for i = 0 to k_complete - 1 do
              match Podem.run e ~reqs:s.cs_faults.(i).Fault_sim.reqs with
              | Podem.Gave_up -> incr n
              | Podem.Found _ | Podem.Proved_unsatisfiable -> ()
            done;
            !n
          in
          let portfolio_aborts =
            let e =
              Justify.Engine.create ~kind:Justify.Portfolio s.cs_circuit
            in
            let rng = Pdf_util.Rng.create params.seed in
            let n = ref 0 in
            for i = 0 to k_complete - 1 do
              if
                Justify.Engine.run e ~rng ~reqs:s.cs_faults.(i).Fault_sim.reqs
                = None
              then incr n
            done;
            !n
          in
          [
            {
              case_name = name "simulation";
              units =
                [
                  ("runs", float_of_int k_sim);
                  ("aborts", float_of_int sim_aborts);
                ];
              thunk =
                (fun () ->
                  (* A fresh seeded RNG per execution keeps every sample on
                     the same decision sequence. *)
                  let rng = Pdf_util.Rng.create params.seed in
                  for i = 0 to k_sim - 1 do
                    ignore
                      (Justify.run engine ~rng
                         ~reqs:s.cs_faults.(i).Fault_sim.reqs
                        : Test_pair.t option)
                  done);
            };
            {
              case_name = name "complete";
              units = [ ("runs", float_of_int k_complete) ];
              thunk =
                (fun () ->
                  for i = 0 to k_complete - 1 do
                    ignore
                      (Justify.run_complete ~max_backtracks:2000 engine
                         ~reqs:s.cs_faults.(i).Fault_sim.reqs
                        : Justify.complete_outcome)
                  done);
            };
            {
              case_name = name "podem";
              units =
                [
                  ("runs", float_of_int k_complete);
                  ("aborts", float_of_int podem_aborts);
                ];
              thunk =
                (fun () ->
                  for i = 0 to k_complete - 1 do
                    ignore
                      (Podem.run podem_engine
                         ~reqs:s.cs_faults.(i).Fault_sim.reqs
                        : Podem.outcome)
                  done);
            };
            {
              case_name = name "portfolio";
              units =
                [
                  ("runs", float_of_int k_complete);
                  ("aborts", float_of_int portfolio_aborts);
                ];
              thunk =
                (fun () ->
                  let rng = Pdf_util.Rng.create params.seed in
                  for i = 0 to k_complete - 1 do
                    ignore
                      (Justify.Engine.run portfolio_engine ~rng
                         ~reqs:s.cs_faults.(i).Fault_sim.reqs
                        : Test_pair.t option)
                  done);
            };
          ])
        params.circuits
    in
    (* A fixed circuit from the fuzz harness's deep grid (the same one
       test_core's engine goldens pin): deep logic is where the
       simulation-based search aborts, so these three cases carry the
       abort-rate comparison CI gates on — "aborts" counts aborted
       primary faults of a full enrichment run per backend. *)
    let deep_cases =
      let dp =
        { Generators.num_pis = 6; num_gates = 30; window = 5; max_fanout = 3;
          reuse_pct = 10; restart_pct = 5; fanin3_pct = 20; inverter_pct = 25;
          po_taps = 1 }
      in
      let c = Generators.random_dag ~name:"deep7" ~seed:7 dp in
      let ts =
        Target_sets.build c (Delay_model.lines c) ~n_p:240 ~n_p0:40
      in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
      let p0 = List.init n0 Fun.id in
      let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
      let enrich kind =
        Atpg.enrich c ~seed:9 ~justify:kind ~faults ~p0 ~p1
      in
      List.map
        (fun kind ->
          let aborted = (enrich kind).Atpg.primary_aborts in
          {
            case_name = "deep/" ^ Justify.kind_name kind;
            units =
              [
                ("faults", float_of_int (Array.length faults));
                ("aborts", float_of_int aborted);
              ];
            thunk = (fun () -> ignore (enrich kind : Atpg.result));
          })
        [ Justify.Sim; Justify.Podem; Justify.Portfolio ]
    in
    profile_cases @ deep_cases
  in
  {
    suite_name = "justify";
    suite_doc =
      "Justification engines: the simulation-based search, the \
       branch-and-bound complete search, the structural PODEM engine \
       and the racing portfolio over the longest faults, with aborted \
       justifications as a telemetry unit";
    cases;
  }

(* The seven per-table kernels that used to live as Bechamel
   micro-benchmarks in bench/main.ml (one per paper table). *)
let kernels_suite =
  let cases params =
    let s27 = Pdf_synth.Iscas.s27 () in
    let big = Profiles.circuit (profile_exn "s953") in
    let model = Delay_model.lines big in
    let target_sets = Target_sets.build big model ~n_p:params.n_p ~n_p0:50 in
    let faults = Fault_sim.prepare big target_sets.Target_sets.p in
    let engine = Justify.create big in
    let rng = Pdf_util.Rng.create 99 in
    let test =
      match Justify.run engine ~rng ~reqs:faults.(0).Fault_sim.reqs with
      | Some t -> t
      | None ->
        Test_pair.create
          (Array.make big.Circuit.num_pis false)
          (Array.make big.Circuit.num_pis false)
    in
    (* Table 4 kernel: one value-based secondary scan step — merge every
       candidate's conditions against an accumulated requirement set. *)
    let delta_scan () =
      let acc = Hashtbl.create 64 in
      List.iter
        (fun (net, req) -> Hashtbl.replace acc net req)
        faults.(0).Fault_sim.reqs;
      Array.fold_left
        (fun count (p : Fault_sim.prepared) ->
          let compatible =
            List.for_all
              (fun (net, req) ->
                match Hashtbl.find_opt acc net with
                | None -> true
                | Some cur -> Option.is_some (Pdf_values.Req.merge cur req))
              p.Fault_sim.reqs
          in
          if compatible then count + 1 else count)
        0 faults
    in
    [
      (* Table 1: bounded enumeration on s27. *)
      {
        case_name = "t1_enumerate_s27";
        units = [];
        thunk =
          (fun () ->
            let model = Delay_model.lines s27 in
            ignore
              (Enumerate.enumerate ~mode:Enumerate.Simple s27 model
                 ~max_paths:20
                : Enumerate.result));
      };
      (* Table 2: histogram construction over P. *)
      {
        case_name = "t2_histogram";
        units = [];
        thunk =
          (fun () ->
            ignore
              (Pdf_paths.Histogram.of_lengths
                 (List.map
                    (fun (e : Target_sets.entry) -> e.Target_sets.length)
                    target_sets.Target_sets.p)
                : Pdf_paths.Histogram.t));
      };
      (* Table 3: a single-fault justification (the basic ATPG kernel). *)
      {
        case_name = "t3_justify_one_fault";
        units = [];
        thunk =
          (fun () ->
            ignore
              (Justify.run engine ~rng ~reqs:faults.(0).Fault_sim.reqs
                : Test_pair.t option));
      };
      (* Table 4: value-based Delta scan over all candidates. *)
      {
        case_name = "t4_value_based_delta";
        units = [ ("faults", float_of_int (Array.length faults)) ];
        thunk = (fun () -> ignore (delta_scan () : int));
      };
      (* Table 5: robust fault simulation of one test over P. *)
      {
        case_name = "t5_fault_sim_one_test";
        units = [ ("faults", float_of_int (Array.length faults)) ];
        thunk =
          (fun () ->
            ignore (Fault_sim.detected_by_test big test faults : bool array));
      };
      (* Table 6: two-pattern simulation (the enrichment inner loop). *)
      {
        case_name = "t6_two_pattern_sim";
        units = [];
        thunk =
          (fun () ->
            ignore
              (Test_pair.simulate big test : Pdf_values.Triple.t array));
      };
      (* Table 7: the implication engine (undetectability + candidate
         filtering, the run-time-ratio driver). *)
      {
        case_name = "t7_implication";
        units = [];
        thunk =
          (fun () ->
            ignore (Pdf_sim.Implication.infer big faults.(0).Fault_sim.reqs));
      };
    ]
  in
  {
    suite_name = "kernels";
    suite_doc =
      "One micro-kernel per paper table (the former Bechamel benchmarks \
       of bench/main.exe)";
    cases;
  }

let suites =
  [ fault_sim_suite; atpg_suite; paths_suite; justify_suite; kernels_suite ]

let find_suite name =
  List.find_opt (fun s -> s.suite_name = name) suites

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type result = {
  r_case : string;
  r_units : (string * float) list;
  r_meas : Bstat.measurement;
  r_stats : Bstat.summary;
}

let throughput r =
  if r.r_stats.Bstat.median_s <= 0. then []
  else
    List.map
      (fun (unit, work) ->
        (unit ^ "_per_s", work /. r.r_stats.Bstat.median_s))
      r.r_units

type report = {
  suite : string;
  fingerprint : Fingerprint.t;
  warmup : int;
  repeat : int;
  min_sample_s : float;
  params : params;
  results : result list;
}

let export_gauges report =
  List.iter
    (fun r ->
      let set field v =
        Metrics.set
          (Metrics.gauge
             (Printf.sprintf "bench.%s.%s.%s" report.suite r.r_case field))
          v
      in
      set "median_s" r.r_stats.Bstat.median_s;
      set "minor_collections"
        (float_of_int r.r_meas.Bstat.gc.Bstat.minor_collections);
      set "major_collections"
        (float_of_int r.r_meas.Bstat.gc.Bstat.major_collections);
      set "promoted_words" r.r_meas.Bstat.gc.Bstat.promoted_words;
      List.iter (fun (unit, v) -> set unit v) (throughput r))
    report.results

let run_suite ?(warmup = 1) ?(repeat = 5) ?(min_sample_s = 0.01)
    ?(params = default_params) ?(progress = ignore) suite =
  let results =
    List.map
      (fun case ->
        let meas =
          Bstat.measure ~warmup ~repeat ~min_sample_s case.thunk
        in
        let stats = Bstat.summarize meas.Bstat.samples in
        progress
          (Printf.sprintf "%-40s median %.3e s  (noise %.1f%%, x%d)"
             case.case_name stats.Bstat.median_s (Bstat.noise_pct stats)
             meas.Bstat.iters);
        {
          r_case = case.case_name;
          r_units = case.units;
          r_meas = meas;
          r_stats = stats;
        })
      (suite.cases params)
  in
  let report =
    {
      suite = suite.suite_name;
      fingerprint =
        Fingerprint.capture ~jobs:(Pool.default_jobs ())
          ~bitsim:(Fault_sim.packed_enabled ()) ();
      warmup;
      repeat;
      min_sample_s;
      params;
      results;
    }
  in
  export_gauges report;
  report

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let schema_id = "pdf-bench-report/1"

let to_json report =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"schema\": %s,\n" (Json.quote schema_id);
  Printf.bprintf b "  \"suite\": %s,\n" (Json.quote report.suite);
  Printf.bprintf b "  \"fingerprint\": %s,\n"
    (Fingerprint.to_json report.fingerprint);
  Printf.bprintf b
    "  \"config\": {\"warmup\": %d, \"repeat\": %d, \"min_sample_s\": %s, \
     \"seed\": %d, \"n_p\": %d, \"n_p0\": %d, \"tests\": %d, \
     \"circuits\": [%s]},\n"
    report.warmup report.repeat
    (Json.float report.min_sample_s)
    report.params.seed report.params.n_p report.params.n_p0
    report.params.n_tests
    (String.concat ", "
       (List.map
          (fun p -> Json.quote p.Profiles.name)
          report.params.circuits));
  Buffer.add_string b "  \"cases\": [\n";
  let n_results = List.length report.results in
  List.iteri
    (fun i r ->
      let kv_floats pairs =
        String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s: %s" (Json.quote k) (Json.float v))
             pairs)
      in
      Printf.bprintf b "    {\"name\": %s,\n" (Json.quote r.r_case);
      Printf.bprintf b "     \"units\": {%s},\n" (kv_floats r.r_units);
      Printf.bprintf b "     \"iters\": %d, \"samples\": [%s],\n"
        r.r_meas.Bstat.iters
        (String.concat ", "
           (Array.to_list (Array.map Json.float r.r_meas.Bstat.samples)));
      let s = r.r_stats in
      Printf.bprintf b
        "     \"n\": %d, \"outliers\": %d, \"median_s\": %s, \"mean_s\": %s, \
         \"min_s\": %s, \"max_s\": %s, \"stddev_s\": %s, \"q1_s\": %s, \
         \"q3_s\": %s, \"iqr_s\": %s,\n"
        s.Bstat.n_raw s.Bstat.outliers
        (Json.float s.Bstat.median_s)
        (Json.float s.Bstat.mean_s) (Json.float s.Bstat.min_s)
        (Json.float s.Bstat.max_s)
        (Json.float s.Bstat.stddev_s)
        (Json.float s.Bstat.q1_s) (Json.float s.Bstat.q3_s)
        (Json.float s.Bstat.iqr_s);
      let gc = r.r_meas.Bstat.gc in
      Printf.bprintf b
        "     \"gc\": {\"minor_collections\": %d, \"major_collections\": %d, \
         \"promoted_words\": %s, \"top_heap_words\": %d},\n"
        gc.Bstat.minor_collections gc.Bstat.major_collections
        (Json.float gc.Bstat.promoted_words)
        gc.Bstat.top_heap_words;
      Printf.bprintf b "     \"throughput\": {%s}}%s\n"
        (kv_floats (throughput r))
        (if i = n_results - 1 then "" else ","))
    report.results;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_report report path =
  let oc = open_out path in
  output_string oc (to_json report);
  close_out oc

let to_table report =
  let t =
    Pdf_util.Table.create
      [
        ("case", Pdf_util.Table.Left); ("median", Pdf_util.Table.Right);
        ("noise %", Pdf_util.Table.Right); ("iters", Pdf_util.Table.Right);
        ("outliers", Pdf_util.Table.Right);
        ("gc min/maj", Pdf_util.Table.Right);
        ("throughput", Pdf_util.Table.Left);
      ]
  in
  List.iter
    (fun r ->
      let tp =
        String.concat " "
          (List.map
             (fun (unit, v) -> Printf.sprintf "%s=%.3g" unit v)
             (throughput r))
      in
      Pdf_util.Table.add_row t
        [
          r.r_case;
          Printf.sprintf "%.3e s" r.r_stats.Bstat.median_s;
          Printf.sprintf "%.1f" (Bstat.noise_pct r.r_stats);
          string_of_int r.r_meas.Bstat.iters;
          string_of_int r.r_stats.Bstat.outliers;
          Printf.sprintf "%d/%d" r.r_meas.Bstat.gc.Bstat.minor_collections
            r.r_meas.Bstat.gc.Bstat.major_collections;
          tp;
        ])
    report.results;
  t

(* ------------------------------------------------------------------ *)
(* Determinism projection and baseline comparison                      *)
(* ------------------------------------------------------------------ *)

let timing_fields =
  [
    "iters"; "samples"; "n"; "outliers"; "median_s"; "mean_s"; "min_s";
    "max_s"; "stddev_s"; "q1_s"; "q3_s"; "iqr_s"; "gc"; "throughput";
  ]

let rec comparable_projection (v : Json.v) =
  match v with
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if List.mem k timing_fields then None
           else Some (k, comparable_projection v))
         fields)
  | Json.Arr items -> Json.Arr (List.map comparable_projection items)
  | other -> other

type delta = {
  d_case : string;
  base_median_s : float;
  cur_median_s : float;
  base_noise_pct : float;
  cur_noise_pct : float;
  verdict : Bstat.verdict;
}

type comparison = {
  deltas : delta list;
  only_in_baseline : string list;
  only_in_current : string list;
  regressions : delta list;
}

(* Rebuild just enough of a [Bstat.summary] from a parsed case for the
   median comparator: median and IQR drive the verdict, the rest is
   carried for display. *)
let summary_of_case obj =
  let num field = Option.bind (Json.member field obj) Json.to_num in
  match (num "median_s", num "iqr_s") with
  | Some median, Some iqr ->
    Some
      {
        Bstat.n_raw =
          (match num "n" with Some n -> int_of_float n | None -> 0);
        outliers =
          (match num "outliers" with Some n -> int_of_float n | None -> 0);
        mean_s = Option.value ~default:median (num "mean_s");
        median_s = median;
        min_s = Option.value ~default:median (num "min_s");
        max_s = Option.value ~default:median (num "max_s");
        stddev_s = Option.value ~default:0. (num "stddev_s");
        q1_s = Option.value ~default:median (num "q1_s");
        q3_s = Option.value ~default:median (num "q3_s");
        iqr_s = iqr;
      }
  | _ -> None

let compare_with_baseline ~max_regress_pct ~baseline report =
  match Json.member "cases" baseline with
  | None -> Error "baseline: no \"cases\" field (not a pdf-bench-report?)"
  | Some (Json.Arr base_cases) -> (
    let base_by_name =
      List.filter_map
        (fun case ->
          match
            (Option.bind (Json.member "name" case) Json.to_str,
             summary_of_case case)
          with
          | Some name, Some summary -> Some (name, summary)
          | _ -> None)
        base_cases
    in
    match base_by_name with
    | [] -> Error "baseline: no parsable cases"
    | _ ->
      let deltas =
        List.filter_map
          (fun r ->
            match List.assoc_opt r.r_case base_by_name with
            | None -> None
            | Some base ->
              Some
                {
                  d_case = r.r_case;
                  base_median_s = base.Bstat.median_s;
                  cur_median_s = r.r_stats.Bstat.median_s;
                  base_noise_pct = Bstat.noise_pct base;
                  cur_noise_pct = Bstat.noise_pct r.r_stats;
                  verdict =
                    (* A median slowdown must be confirmed by the
                       best-case sample before it counts: transient
                       machine load inflates medians but almost never
                       every sample of a run, so an unconfirmed Slower
                       is indistinguishable from between-run noise and
                       is downgraded to Same. *)
                    (match
                       Bstat.compare_medians ~min_effect_pct:max_regress_pct
                         ~baseline:base ~current:r.r_stats ()
                     with
                    | Bstat.Slower _
                      when base.Bstat.min_s > 0.
                           && 100.
                              *. (r.r_stats.Bstat.min_s -. base.Bstat.min_s)
                              /. base.Bstat.min_s
                              <= max_regress_pct -> Bstat.Same
                    | v -> v);
                })
          report.results
      in
      let current_names = List.map (fun r -> r.r_case) report.results in
      Ok
        {
          deltas;
          only_in_baseline =
            List.filter_map
              (fun (name, _) ->
                if List.mem name current_names then None else Some name)
              base_by_name;
          only_in_current =
            List.filter
              (fun name ->
                not (List.mem_assoc name base_by_name))
              current_names;
          regressions =
            List.filter
              (fun d ->
                match d.verdict with Bstat.Slower _ -> true | _ -> false)
              deltas;
        })
  | Some _ -> Error "baseline: \"cases\" is not an array"

let comparison_table cmp =
  let t =
    Pdf_util.Table.create
      [
        ("case", Pdf_util.Table.Left); ("baseline", Pdf_util.Table.Right);
        ("current", Pdf_util.Table.Right); ("change", Pdf_util.Table.Right);
        ("verdict", Pdf_util.Table.Left);
      ]
  in
  List.iter
    (fun d ->
      let change =
        if d.base_median_s = 0. then "n/a"
        else
          Printf.sprintf "%+.1f%%"
            (100. *. (d.cur_median_s -. d.base_median_s) /. d.base_median_s)
      in
      Pdf_util.Table.add_row t
        [
          d.d_case;
          Printf.sprintf "%.3e s" d.base_median_s;
          Printf.sprintf "%.3e s" d.cur_median_s;
          change;
          Bstat.verdict_to_string d.verdict;
        ])
    cmp.deltas;
  t
