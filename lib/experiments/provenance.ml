module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Ledger = Pdf_obs.Ledger
module Table = Pdf_util.Table

type t = {
  circuit : Pdf_circuit.Circuit.t;
  target_sets : Target_sets.t;
  faults : Fault_sim.prepared array;
  result : Atpg.result;
  ledger : Ledger.t;
}

let build ?(criterion = Pdf_faults.Robust.Robust) ?(n_p = 2000) ?(n_p0 = 200)
    ?(seed = Workload.default_seed) ?justify c =
  let ledger = Ledger.create () in
  let model = Pdf_paths.Delay_model.lines c in
  let ts = Target_sets.build ~criterion ~ledger c model ~n_p ~n_p0 in
  let faults = Fault_sim.prepare ~criterion c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let result = Atpg.enrich ~ledger ?justify c ~seed ~faults ~p0 ~p1 in
  { circuit = c; target_sets = ts; faults; result; ledger }

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let ls = String.length s and lu = String.length sub in
  lu > 0
  &&
  let rec at i = i + lu <= ls && (String.sub s i lu = sub || at (i + 1)) in
  at 0

(* A query is either a fault id (integer) or a substring of the fault
   name (e.g. a net name on the path). *)
let matches_query query r =
  match int_of_string_opt query with
  | Some id -> Ledger.get_int r "id" = Some id
  | None -> (
    match Ledger.get_string r "fault" with
    | Some name -> contains name query
    | None -> false)

let assoc_int k kvs =
  match List.assoc_opt k kvs with Some (Ledger.I i) -> Some i | _ -> None

let assoc_string k kvs =
  match List.assoc_opt k kvs with Some (Ledger.S s) -> Some s | _ -> None

let str field r = Option.value ~default:"?" (Ledger.get_string r field)

let describe_test ledger b ~fault_id ~test_id =
  match
    Ledger.find ledger ~kind:"test" (fun tr ->
        Ledger.get_int tr "id" = Some test_id)
  with
  | [ tr ] ->
    Printf.bprintf b "  test %d: primary %s, pattern %s\n" test_id
      (str "primary_fault" tr) (str "pattern" tr);
    (match Ledger.field tr "folded" with
    | Some (Ledger.L entries) ->
      Printf.bprintf b "  %d secondary fold(s) into this test\n"
        (List.length entries);
      List.iter
        (function
          | Ledger.O kvs when assoc_int "id" kvs = Some fault_id ->
            Printf.bprintf b "  this fault folded at step %d (%s)\n"
              (Option.value ~default:(-1) (assoc_int "step" kvs))
              (Option.value ~default:"?" (assoc_string "via" kvs))
          | _ -> ())
        entries
    | _ -> ());
    (match Ledger.field tr "justify" with
    | Some (Ledger.O kvs) ->
      let geti k = Option.value ~default:0 (assoc_int k kvs) in
      Printf.bprintf b
        "  justification effort: %d runs, %d trials, %d backtracks\n"
        (geti "runs") (geti "trials") (geti "backtracks")
    | _ -> ())
  | _ -> ()

let describe_fault ledger r =
  let b = Buffer.create 128 in
  let id = Option.value ~default:(-1) (Ledger.get_int r "id") in
  Printf.bprintf b "fault #%d: %s\n" id (str "fault" r);
  (match Ledger.get_string r "disposition" with
  | Some "detected" ->
    let test_id = Option.value ~default:(-1) (Ledger.get_int r "test") in
    Printf.bprintf b "  detected by test %d, via %s\n" test_id (str "via" r);
    describe_test ledger b ~fault_id:id ~test_id
  | Some "aborted" ->
    Buffer.add_string b
      "  targeted as a primary; justification found no test (aborted)\n"
  | Some "uncovered" ->
    Printf.bprintf b "  left uncovered (last rejection: %s)\n" (str "reason" r)
  | Some other -> Printf.bprintf b "  disposition: %s\n" other
  | None -> ());
  Buffer.contents b

let describe_undetectable r =
  let b = Buffer.create 128 in
  Printf.bprintf b "fault: %s\n" (str "fault" r);
  (match Ledger.get_string r "class" with
  | Some "implication_conflict" ->
    Printf.bprintf b
      "  undetectable: implication conflict on net %s (pattern component \
       %d)\n"
      (str "net" r)
      (Option.value ~default:(-1) (Ledger.get_int r "component"))
  | Some cls -> Printf.bprintf b "  undetectable: %s\n" cls
  | None -> ());
  Buffer.contents b

let explain t query =
  let fault_recs = Ledger.find t.ledger ~kind:"fault" (matches_query query) in
  let undet_recs =
    Ledger.find t.ledger ~kind:"undetectable" (matches_query query)
  in
  match (fault_recs, undet_recs) with
  | [], [] -> Error (Printf.sprintf "no enumerated fault matches %S" query)
  | _ ->
    Ok
      (String.concat ""
         (List.map (describe_fault t.ledger) fault_recs
         @ List.map describe_undetectable undet_recs))

(* ------------------------------------------------------------------ *)
(* why                                                                 *)
(* ------------------------------------------------------------------ *)

let effort_int r k =
  match Ledger.field r "effort" with
  | Some (Ledger.O kvs) -> Option.value ~default:0 (assoc_int k kvs)
  | _ -> 0

(* The effort breakdown and abort forensics a "fault" record carries on
   top of its disposition (DESIGN.md §14). *)
let describe_effort r =
  let b = Buffer.create 128 in
  (match Ledger.field r "effort" with
  | Some (Ledger.O kvs) ->
    let geti k = Option.value ~default:0 (assoc_int k kvs) in
    if geti "runs" = 0 then
      Buffer.add_string b
        "  no justification search ever targeted this fault\n"
    else
      Printf.bprintf b
        "  justification effort charged to this fault: %d run(s), %d \
         trials, %d backtracks, %d resim gate evals\n"
        (geti "runs") (geti "trials") (geti "backtracks")
        (geti "resim_gates")
  | _ -> ());
  (match Ledger.field r "last_conflict" with
  | Some (Ledger.O kvs) ->
    let geti k = Option.value ~default:(-1) (assoc_int k kvs) in
    Printf.bprintf b
      "  last requirement conflict: net %s (id %d, level %d); deepest \
       conflict at level %d\n"
      (Option.value ~default:"?" (assoc_string "name" kvs))
      (geti "net") (geti "level") (geti "deepest_level")
  | _ ->
    if effort_int r "runs" > 0 then
      Buffer.add_string b
        "  no requirement conflict hit while targeting this fault\n");
  Buffer.contents b

(* [why] answers the same queries as [explain] — fault id or a name
   substring — with the explanation plus the per-fault effort breakdown
   and abort forensics.  Undetectable faults were eliminated before any
   search ran, so they carry no effort and are described as by
   [explain]. *)
let why t query =
  let fault_recs = Ledger.find t.ledger ~kind:"fault" (matches_query query) in
  let undet_recs =
    Ledger.find t.ledger ~kind:"undetectable" (matches_query query)
  in
  match (fault_recs, undet_recs) with
  | [], [] -> Error (Printf.sprintf "no enumerated fault matches %S" query)
  | _ ->
    Ok
      (String.concat ""
         (List.map
            (fun r -> describe_fault t.ledger r ^ describe_effort r)
            fault_recs
         @ List.map describe_undetectable undet_recs))

(* ------------------------------------------------------------------ *)
(* report                                                              *)
(* ------------------------------------------------------------------ *)

let report t =
  let faults = Ledger.find t.ledger ~kind:"fault" (fun _ -> true) in
  let undet = Ledger.find t.ledger ~kind:"undetectable" (fun _ -> true) in
  let tests = Ledger.find t.ledger ~kind:"test" (fun _ -> true) in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s: %d tests, %d target faults, %d undetectable\n\n"
    t.circuit.Pdf_circuit.Circuit.name (List.length tests)
    (List.length faults) (List.length undet);
  let count pred l = List.length (List.filter pred l) in
  let disp d r = Ledger.get_string r "disposition" = Some d in
  let via v r = Ledger.get_string r "via" = Some v in
  let reason v r = Ledger.get_string r "reason" = Some v in
  let cls v r = Ledger.get_string r "class" = Some v in
  let summary = Table.create [ ("disposition", Table.Left); ("faults", Table.Right) ] in
  List.iter
    (fun (label, n) -> Table.add_row summary [ label; string_of_int n ])
    [
      ("detected via primary",
       count (fun r -> disp "detected" r && via "primary" r) faults);
      ("detected via folding",
       count (fun r -> disp "detected" r && via "folded" r) faults);
      ("detected accidentally",
       count (fun r -> disp "detected" r && via "accidental" r) faults);
      ("aborted (primary justification)", count (disp "aborted") faults);
      ("uncovered: requirement conflict",
       count (fun r -> disp "uncovered" r && reason "conflict" r) faults);
      ("uncovered: implied contradiction",
       count (fun r -> disp "uncovered" r && reason "implied" r) faults);
      ("uncovered: search failed",
       count (fun r -> disp "uncovered" r && reason "search" r) faults);
      ("uncovered: never targeted",
       count (fun r -> disp "uncovered" r && reason "never_targeted" r) faults);
      ("undetectable: direct conflict", count (cls "direct_conflict") undet);
      ("undetectable: implication conflict",
       count (cls "implication_conflict") undet);
    ];
  Buffer.add_string b (Table.render summary);
  Buffer.add_char b '\n';
  (* Abort/reject forensics: how much search effort each failure class
     consumed.  Lower median over plain ints — no floats, so the report
     stays byte-stable. *)
  let median = function
    | [] -> 0
    | xs ->
      let a = Array.of_list xs in
      Array.sort Int.compare a;
      a.((Array.length a - 1) / 2)
  in
  let breakdown =
    Table.create ~title:"abort/reject breakdown"
      [
        ("class", Table.Left); ("faults", Table.Right);
        ("med j.trials", Table.Right); ("max j.trials", Table.Right);
        ("med resim gates", Table.Right); ("max resim gates", Table.Right);
      ]
  in
  List.iter
    (fun (label, pred) ->
      let rs = List.filter pred faults in
      match rs with
      | [] -> Table.add_row breakdown [ label; "0"; "-"; "-"; "-"; "-" ]
      | _ ->
        let trials = List.map (fun r -> effort_int r "trials") rs in
        let resim = List.map (fun r -> effort_int r "resim_gates") rs in
        Table.add_row breakdown
          [
            label;
            string_of_int (List.length rs);
            string_of_int (median trials);
            string_of_int (List.fold_left max 0 trials);
            string_of_int (median resim);
            string_of_int (List.fold_left max 0 resim);
          ])
    [
      ("aborted (primary justification)", disp "aborted");
      ("uncovered: requirement conflict",
       fun r -> disp "uncovered" r && reason "conflict" r);
      ("uncovered: implied contradiction",
       fun r -> disp "uncovered" r && reason "implied" r);
      ("uncovered: search failed",
       fun r -> disp "uncovered" r && reason "search" r);
      ("uncovered: never targeted",
       fun r -> disp "uncovered" r && reason "never_targeted" r);
    ];
  Buffer.add_string b (Table.render breakdown);
  Buffer.add_char b '\n';
  let per_test =
    Table.create
      [
        ("test", Table.Right); ("primary fault", Table.Left);
        ("folded", Table.Right); ("j.runs", Table.Right);
        ("j.trials", Table.Right); ("j.backtracks", Table.Right);
      ]
  in
  List.iter
    (fun tr ->
      let folded =
        match Ledger.field tr "folded" with
        | Some (Ledger.L entries) -> List.length entries
        | _ -> 0
      in
      let justify k =
        match Ledger.field tr "justify" with
        | Some (Ledger.O kvs) -> Option.value ~default:0 (assoc_int k kvs)
        | _ -> 0
      in
      Table.add_row per_test
        [
          string_of_int (Option.value ~default:(-1) (Ledger.get_int tr "id"));
          str "primary_fault" tr;
          string_of_int folded;
          string_of_int (justify "runs");
          string_of_int (justify "trials");
          string_of_int (justify "backtracks");
        ])
    tests;
  Buffer.add_string b (Table.render per_test);
  Buffer.add_char b '\n';
  (* Consistency: every prepared fault id has exactly one disposition
     record (ascending), and every enumerated fault is either a target
     or was eliminated as undetectable. *)
  let n = Array.length t.faults in
  let ids_ok =
    List.length faults = n
    && List.for_all2
         (fun r i -> Ledger.get_int r "id" = Some i)
         faults
         (List.init (List.length faults) Fun.id)
  in
  let enumerated = n + List.length undet in
  Printf.bprintf b
    "%d enumerated faults = %d dispositions + %d undetectable: %s\n"
    enumerated n (List.length undet)
    (if ids_ok then "consistent (each fault has exactly one disposition)"
     else "INCONSISTENT");
  Buffer.contents b
