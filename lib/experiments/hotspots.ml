module Circuit = Pdf_circuit.Circuit
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Attrib = Pdf_obs.Attrib
module Trace = Pdf_obs.Trace
module Table = Pdf_util.Table
module Json = Pdf_obs.Json_text

(* Structural effort profile of one enrichment run (DESIGN.md §14): the
   provenance workload re-run with a {!Pdf_obs.Attrib} store attached,
   then aggregated per net, per level and as a top-K hotspot table.
   Every exported figure is semantic (engine-invariant) and integral,
   so the rendered table, the JSON report and the Perfetto counter
   track are byte-identical across --jobs values and the
   PDF_INCSIM/PDF_BITSIM engine toggles. *)

type t = {
  circuit : Circuit.t;
  n_p : int;
  n_p0 : int;
  seed : int;
  tests : int;
  faults : int;
  detected : int;
  aborts : int;
  sheet : Attrib.sheet;
}

let profile ?(criterion = Pdf_faults.Robust.Robust) ?(n_p = 2000)
    ?(n_p0 = 200) ?(seed = Workload.default_seed) ?justify c =
  let attrib = Attrib.create ~nets:(Circuit.num_nets c) in
  let model = Pdf_paths.Delay_model.lines c in
  let ts = Target_sets.build ~criterion c model ~n_p ~n_p0 in
  let faults = Fault_sim.prepare ~criterion c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let result = Atpg.enrich ~attrib ?justify c ~seed ~faults ~p0 ~p1 in
  (* A verification fault-sim pass over the generated tests: its packed
     batches attribute their dirty-cone work through the pool-merged
     path.  The counts it adds are engine-variant ([inc_resims]) and
     are never exported; the detection flags must agree with the
     generation loop's own bookkeeping. *)
  let flags =
    Fault_sim.detected_by_tests ~attrib c result.Atpg.tests faults
  in
  assert (flags = result.Atpg.detected);
  {
    circuit = c;
    n_p;
    n_p0;
    seed;
    tests = List.length result.Atpg.tests;
    faults = Array.length faults;
    detected = Fault_sim.count result.Atpg.detected;
    aborts = result.Atpg.primary_aborts;
    sheet = Attrib.snapshot attrib;
  }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(* Semantic effort summed per circuit level: index l holds the total
   charged to nets at level l. *)
let per_level t =
  let c = t.circuit in
  let n = Circuit.num_nets c in
  let max_level = ref 0 in
  for net = 0 to n - 1 do
    let l = Circuit.level c net in
    if l > !max_level then max_level := l
  done;
  let eff = Array.make (!max_level + 1) 0 in
  for net = 0 to n - 1 do
    let l = Circuit.level c net in
    eff.(l) <- eff.(l) + Attrib.semantic_total t.sheet net
  done;
  eff

type hot = {
  net : int;
  name : string;
  level : int;
  trials : int;
  trial_evals : int;
  resim : int;
  conflicts : int;
  backtracks : int;
  cand_evals : int;
  total : int;
}

(* Hottest nets by semantic effort, ties broken by net id — a total
   order, so the ranking is deterministic. *)
let top ?(k = 10) t =
  let c = t.circuit in
  let s = t.sheet in
  let all = ref [] in
  for net = Circuit.num_nets c - 1 downto 0 do
    let total = Attrib.semantic_total s net in
    if total > 0 then
      all :=
        {
          net;
          name = Circuit.net_name c net;
          level = Circuit.level c net;
          trials = s.Attrib.trials.(net);
          trial_evals = s.Attrib.trial_evals.(net);
          resim = s.Attrib.resim_cone.(net);
          conflicts = s.Attrib.conflicts.(net);
          backtracks = s.Attrib.backtracks.(net);
          cand_evals = s.Attrib.cand_evals.(net);
          total;
        }
        :: !all
  done;
  let sorted =
    List.sort
      (fun a b ->
        if a.total <> b.total then Int.compare b.total a.total
        else Int.compare a.net b.net)
      !all
  in
  List.filteri (fun i _ -> i < k) sorted

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let bar ~width value max_value =
  if max_value <= 0 || value <= 0 then ""
  else String.make (max 1 (value * width / max_value)) '#'

let render ?(k = 10) t =
  let s = t.sheet in
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s: effort profile (n_p %d, n_p0 %d, seed %d)\n"
    t.circuit.Circuit.name t.n_p t.n_p0 t.seed;
  Printf.bprintf b "%d tests, %d/%d faults detected, %d primary abort(s)\n\n"
    t.tests t.detected t.faults t.aborts;
  Printf.bprintf b
    "justification totals: %d runs, %d trials, %d trial gate evals,\n"
    s.Attrib.t_runs s.Attrib.t_trials s.Attrib.t_trial_evals;
  Printf.bprintf b
    "  %d resims (%d full-pass gate evals), %d conflicts, %d backtracks,\n"
    s.Attrib.t_resim_calls s.Attrib.t_resim_gates s.Attrib.t_conflicts
    s.Attrib.t_backtracks;
  Printf.bprintf b "  %d candidate scans (%d requirement-net touches)\n\n"
    s.Attrib.t_cand_scans
    (Array.fold_left ( + ) 0 s.Attrib.cand_evals);
  let levels = per_level t in
  let max_eff = Array.fold_left max 0 levels in
  let lvl_table =
    Table.create [ ("level", Table.Right); ("effort", Table.Right);
                   ("", Table.Left) ]
  in
  Array.iteri
    (fun l eff ->
      Table.add_row lvl_table
        [ string_of_int l; string_of_int eff; bar ~width:32 eff max_eff ])
    levels;
  Printf.bprintf b "per-level effort:\n%s\n" (Table.render lvl_table);
  let hot_table =
    Table.create
      [
        ("net", Table.Right); ("name", Table.Left); ("level", Table.Right);
        ("trials", Table.Right); ("evals", Table.Right);
        ("resim", Table.Right); ("confl", Table.Right); ("bt", Table.Right);
        ("cand", Table.Right); ("total", Table.Right);
      ]
  in
  List.iter
    (fun h ->
      Table.add_row hot_table
        [
          string_of_int h.net; h.name; string_of_int h.level;
          string_of_int h.trials; string_of_int h.trial_evals;
          string_of_int h.resim; string_of_int h.conflicts;
          string_of_int h.backtracks; string_of_int h.cand_evals;
          string_of_int h.total;
        ])
    (top ~k t);
  Printf.bprintf b "hot nets (top %d by semantic effort):\n%s" k
    (Table.render hot_table);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let schema_id = "pdf-profile-report/1"

(* Integers and quoted names only — like the ledger, the report is
   float-free so the emitted bytes carry no formatting ambiguity. *)
let to_json ?(k = 10) t =
  let s = t.sheet in
  let b = Buffer.create 2048 in
  Printf.bprintf b "{\n  \"schema\": %s,\n" (Json.quote schema_id);
  Printf.bprintf b "  \"circuit\": %s,\n"
    (Json.quote t.circuit.Circuit.name);
  Printf.bprintf b
    "  \"params\": {\"n_p\": %d, \"n_p0\": %d, \"seed\": %d},\n" t.n_p
    t.n_p0 t.seed;
  Printf.bprintf b "  \"nets\": %d,\n  \"gates\": %d,\n"
    (Circuit.num_nets t.circuit)
    (Circuit.num_gates t.circuit);
  Printf.bprintf b
    "  \"tests\": %d,\n  \"faults\": %d,\n  \"detected\": %d,\n  \"aborts\": %d,\n"
    t.tests t.faults t.detected t.aborts;
  Printf.bprintf b
    "  \"totals\": {\"runs\": %d, \"trials\": %d, \"trial_evals\": %d, \
     \"resim_calls\": %d, \"resim_gates\": %d, \"conflicts\": %d, \
     \"backtracks\": %d, \"cand_scans\": %d},\n"
    s.Attrib.t_runs s.Attrib.t_trials s.Attrib.t_trial_evals
    s.Attrib.t_resim_calls s.Attrib.t_resim_gates s.Attrib.t_conflicts
    s.Attrib.t_backtracks s.Attrib.t_cand_scans;
  let levels = per_level t in
  Buffer.add_string b "  \"per_level\": [";
  Array.iteri
    (fun l eff ->
      if l > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "{\"level\": %d, \"effort\": %d}" l eff)
    levels;
  Buffer.add_string b "],\n  \"hot\": [\n";
  let hots = top ~k t in
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "    {\"net\": %d, \"name\": %s, \"level\": %d, \"trials\": %d, \
         \"trial_evals\": %d, \"resim_gates\": %d, \"conflicts\": %d, \
         \"backtracks\": %d, \"cand_evals\": %d, \"total\": %d}"
        h.net (Json.quote h.name) h.level h.trials h.trial_evals h.resim
        h.conflicts h.backtracks h.cand_evals h.total)
    hots;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let write_json ?k t path =
  let oc = open_out path in
  output_string oc (to_json ?k t);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Perfetto counter track                                              *)
(* ------------------------------------------------------------------ *)

(* One counter sample per circuit level, at a deterministic timestamp
   (ts = level, in µs): loaded next to the span timeline, the track
   draws the per-level effort histogram.  Samples are added in level
   order, so the trace bytes stay deterministic. *)
let counter_track t collector =
  let levels = per_level t in
  Array.iteri
    (fun l eff ->
      Trace.counter collector
        ~name:(t.circuit.Circuit.name ^ " effort/level")
        ~track:0 ~ts_us:(float_of_int l) ~value:eff ())
    levels
