module Ordering = Pdf_core.Ordering
module Atpg = Pdf_core.Atpg
module Fault_sim = Pdf_core.Fault_sim
module Target_sets = Pdf_faults.Target_sets
module Profiles = Pdf_synth.Profiles
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log

let g_p0_detected = Metrics.gauge "enrich.p0_detected"
let g_p1_detected = Metrics.gauge "enrich.p1_detected"
let g_p_detected = Metrics.gauge "enrich.p_detected"
let g_tests = Metrics.gauge "enrich.tests"

type basic_run = {
  ordering : Ordering.t;
  p0_detected : int;
  tests : int;
  p_detected : int;
  runtime_s : float;
}

type circuit_run = {
  profile : Profiles.t;
  scale : Workload.scale;
  i0 : int;
  cutoff_length : int;
  p_total : int;
  p0_total : int;
  histogram : Pdf_paths.Histogram.t;
  basics : basic_run list;
  enrich_p0_detected : int;
  enrich_p_detected : int;
  enrich_tests : int;
  enrich_runtime_s : float;
  enrich_aborts : int;
}

let run ?pool ?(seed = Workload.default_seed) ?(with_basics = true)
    (scale : Workload.scale) profile =
  Span.with_ "runner" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Pdf_par.Pool.default ()
  in
  Log.info "runner: %s (scale=%s seed=%d jobs=%d)" profile.Profiles.name
    scale.Workload.label seed (Pdf_par.Pool.jobs pool);
  let c = Profiles.circuit profile in
  let model = Pdf_paths.Delay_model.lines c in
  let ts =
    Target_sets.build c model ~n_p:scale.Workload.n_p ~n_p0:scale.Workload.n_p0
  in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n = Array.length faults in
  let n0 = List.length ts.Target_sets.p0 in
  let p0_ids = List.init n0 (fun i -> i) in
  let p1_ids = List.init (n - n0) (fun i -> n0 + i) in
  let faults0 = Array.of_list (List.map (fun i -> faults.(i)) p0_ids) in
  let orderings =
    if with_basics then Ordering.all else [ Ordering.Value_based ]
  in
  (* The orderings are independent runs: each derives all randomness
     from [seed] and its own ordering (never from a shared RNG stream)
     and shares only the immutable circuit and prepared faults, so
     running them on the pool yields exactly the sequential results, in
     [Ordering.all] order (Pool.map preserves input order). *)
  let basics =
    Pdf_par.Pool.map pool
      (fun ordering ->
        Span.with_ ("basic-" ^ Ordering.name ordering) @@ fun () ->
        let res = Atpg.basic c { Atpg.ordering; seed } ~faults:faults0 in
        let p_detected =
          Fault_sim.count
            (Fault_sim.detected_by_tests ~pool c res.Atpg.tests faults)
        in
        let br =
          {
            ordering;
            p0_detected = Fault_sim.count res.Atpg.detected;
            tests = List.length res.Atpg.tests;
            p_detected;
            runtime_s = res.Atpg.runtime_s;
          }
        in
        (* Live progress for long table runs; Log.event serialises
           through the log mutex, so pool workers never interleave. *)
        Log.event ~fields:
          [ ("profile", profile.Profiles.name);
            ("ordering", Ordering.name ordering);
            ("tests", string_of_int br.tests);
            ("p0_detected", string_of_int br.p0_detected) ]
          "runner.progress";
        br)
      orderings
  in
  let er =
    Span.with_ "enrich" (fun () ->
        Atpg.enrich c ~seed ~faults ~p0:p0_ids ~p1:p1_ids)
  in
  Metrics.set_int g_p0_detected (Atpg.count_detected er ~ids:p0_ids);
  Metrics.set_int g_p1_detected (Atpg.count_detected er ~ids:p1_ids);
  Metrics.set_int g_p_detected (Fault_sim.count er.Atpg.detected);
  Metrics.set_int g_tests (List.length er.Atpg.tests);
  {
    profile;
    scale;
    i0 = ts.Target_sets.i0;
    cutoff_length = ts.Target_sets.cutoff_length;
    p_total = n;
    p0_total = n0;
    histogram = ts.Target_sets.histogram;
    basics;
    enrich_p0_detected = Atpg.count_detected er ~ids:p0_ids;
    enrich_p_detected = Fault_sim.count er.Atpg.detected;
    enrich_tests = List.length er.Atpg.tests;
    enrich_runtime_s = er.Atpg.runtime_s;
    enrich_aborts = er.Atpg.primary_aborts;
  }

let ratio run =
  match
    List.find_opt (fun b -> b.ordering = Ordering.Value_based) run.basics
  with
  | Some b when b.runtime_s > 0. -> Some (run.enrich_runtime_s /. b.runtime_s)
  | Some _ | None -> None
