module Table = Pdf_util.Table
module Ordering = Pdf_core.Ordering
module Enumerate = Pdf_paths.Enumerate
module Path = Pdf_paths.Path
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Circuit = Pdf_circuit.Circuit

let heuristic_columns = List.map Ordering.name Ordering.all

let basic_cell run ordering pick =
  match
    List.find_opt (fun (b : Runner.basic_run) -> b.Runner.ordering = ordering)
      run.Runner.basics
  with
  | Some b -> string_of_int (pick b)
  | None -> "-"

let row_of_run run pick =
  run.Runner.profile.Pdf_synth.Profiles.name
  :: string_of_int run.Runner.i0
  :: List.map (fun o -> basic_cell run o pick) Ordering.all

(* ------------------------------------------------------------------ *)

let table1 () =
  let buf = Buffer.create 2048 in
  let c = Pdf_synth.Iscas.s27 () in
  let model = Pdf_paths.Delay_model.lines c in
  Buffer.add_string buf
    "Table 1 counterpart: bounded path enumeration on s27 (N_P = 20 paths,\n\
     simple mode: first-partial extension, shortest-complete eviction).\n\n";
  let r =
    Enumerate.enumerate ~mode:Enumerate.Simple ~record_events:true c model
      ~max_paths:20
  in
  Buffer.add_string buf
    (Printf.sprintf "extension steps: %d, evictions: %d\n" r.Enumerate.steps
       r.Enumerate.evicted);
  List.iter
    (fun ev ->
      match ev with
      | Enumerate.Evicted (p, len, complete) ->
        Buffer.add_string buf
          (Printf.sprintf "  evicted %s path %s (length %d)\n"
             (if complete then "complete" else "partial")
             (Path.to_string c p) len)
      | Enumerate.Completed _ -> ())
    r.Enumerate.events;
  Buffer.add_string buf
    (Printf.sprintf "\nfinal set: %d complete paths\n"
       (List.length r.Enumerate.paths));
  List.iter
    (fun (p, len) ->
      Buffer.add_string buf
        (Printf.sprintf "  length %2d  %s\n" len (Path.to_string c p)))
    r.Enumerate.paths;
  (* The paper's running example: the slow-to-rise fault on the path the
     paper labels (2,9,10,15).  In netlist names that is the path entering
     NOR gate G12 from input G1 and leaving through NAND gate G13. *)
  let g12 =
    match Circuit.find_net c "G12" with Some n -> n | None -> assert false
  in
  let g13 =
    match Circuit.find_net c "G13" with Some n -> n | None -> assert false
  in
  let g1 =
    match Circuit.find_net c "G1" with Some n -> n | None -> assert false
  in
  let hop_to net prev =
    match Circuit.gate_of_net c net with
    | None -> assert false
    | Some g ->
      let fanins = c.Circuit.gates.(g).Circuit.fanins in
      let pin = ref (-1) in
      Array.iteri (fun i f -> if f = prev then pin := i) fanins;
      assert (!pin >= 0);
      { Path.gate = g; pin = !pin }
  in
  let path =
    Path.extend (Path.extend (Path.source_only g1) (hop_to g12 g1))
      (hop_to g13 g12)
  in
  let fault = Fault.rising path in
  Buffer.add_string buf
    (Printf.sprintf "\nA(p) of the paper's example fault, %s:\n"
       (Fault.to_string c fault));
  (match Robust.conditions c fault with
  | Some reqs ->
    List.iter
      (fun (net, req) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-4s : %s\n" (Circuit.net_name c net)
             (Pdf_values.Req.to_string req)))
      reqs
  | None -> Buffer.add_string buf "  (unexpectedly undetectable)\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let table2 (scale : Workload.scale) =
  let profile =
    match Pdf_synth.Profiles.find "s1423" with
    | Some p -> p
    | None -> assert false
  in
  let c = Pdf_synth.Profiles.circuit profile in
  let model = Pdf_paths.Delay_model.lines c in
  let ts =
    Pdf_faults.Target_sets.build c model ~n_p:scale.Workload.n_p
      ~n_p0:scale.Workload.n_p0
  in
  let table =
    Pdf_paths.Histogram.to_table ~max_rows:20 ts.Pdf_faults.Target_sets.histogram
  in
  Printf.sprintf
    "Table 2 counterpart: fault counts per path length, %s look-alike\n\
     (scale %s: N_P = %d, N_P0 = %d; i0 = %d, L_i0 = %d)\n\n%s"
    profile.Pdf_synth.Profiles.name scale.Workload.label scale.Workload.n_p
    scale.Workload.n_p0 ts.Pdf_faults.Target_sets.i0
    ts.Pdf_faults.Target_sets.cutoff_length (Table.render table)

(* ------------------------------------------------------------------ *)

let table3_t runs =
  let t =
    Table.create
      ~title:
        "Table 3 counterpart: basic test generation using P0 (detected faults)"
      (("circuit", Table.Left) :: ("i0", Table.Right)
      :: ("P0 flts", Table.Right)
      :: List.map (fun h -> (h, Table.Right)) heuristic_columns)
  in
  List.iter
    (fun run ->
      Table.add_row t
        (run.Runner.profile.Pdf_synth.Profiles.name
        :: string_of_int run.Runner.i0
        :: string_of_int run.Runner.p0_total
        :: List.map
             (fun o -> basic_cell run o (fun b -> b.Runner.p0_detected))
             Ordering.all))
    runs;
  t

let table3 runs = Table.render (table3_t runs)

let table4_t runs =
  let t =
    Table.create
      ~title:
        "Table 4 counterpart: basic test generation using P0 (numbers of tests)"
      (("circuit", Table.Left) :: ("i0", Table.Right)
      :: List.map (fun h -> (h, Table.Right)) heuristic_columns)
  in
  List.iter
    (fun run -> Table.add_row t (row_of_run run (fun b -> b.Runner.tests)))
    runs;
  t

let table4 runs = Table.render (table4_t runs)

let table5_t runs =
  let t =
    Table.create
      ~title:
        "Table 5 counterpart: simulation of P0 u P1 under the basic test sets"
      (("circuit", Table.Left) :: ("i0", Table.Right)
      :: ("P0,P1 flts", Table.Right)
      :: List.map (fun h -> (h, Table.Right)) heuristic_columns)
  in
  List.iter
    (fun run ->
      Table.add_row t
        (run.Runner.profile.Pdf_synth.Profiles.name
        :: string_of_int run.Runner.i0
        :: string_of_int run.Runner.p_total
        :: List.map
             (fun o -> basic_cell run o (fun b -> b.Runner.p_detected))
             Ordering.all))
    runs;
  t

let table5 runs = Table.render (table5_t runs)

let table6_t runs =
  let t =
    Table.create
      ~title:"Table 6 counterpart: test enrichment using P0 and P1"
      [
        ("circuit", Table.Left); ("i0", Table.Right);
        ("P0 total", Table.Right); ("P0 det", Table.Right);
        ("P0,P1 total", Table.Right); ("P0,P1 det", Table.Right);
        ("tests", Table.Right);
      ]
  in
  List.iter
    (fun run ->
      Table.add_row t
        [
          run.Runner.profile.Pdf_synth.Profiles.name;
          string_of_int run.Runner.i0;
          string_of_int run.Runner.p0_total;
          string_of_int run.Runner.enrich_p0_detected;
          string_of_int run.Runner.p_total;
          string_of_int run.Runner.enrich_p_detected;
          string_of_int run.Runner.enrich_tests;
        ])
    runs;
  t

let table6 runs = Table.render (table6_t runs)

let table7_t runs =
  let t =
    Table.create ~title:"Table 7 counterpart: run time ratios enrich/basic"
      [ ("circuit", Table.Left); ("i0", Table.Right); ("ratio", Table.Right) ]
  in
  List.iter
    (fun run ->
      Table.add_row t
        [
          run.Runner.profile.Pdf_synth.Profiles.name;
          string_of_int run.Runner.i0;
          (match Runner.ratio run with
          | Some r -> Printf.sprintf "%.2f" r
          | None -> "n/a");
        ])
    runs;
  t

let table7 runs = Table.render (table7_t runs)

(* CSV export of the measured tables (named file stem, CSV content). *)
let csv_exports ~table_runs ~enrich_runs =
  [
    ("table3_p0_detected", Pdf_util.Csv.of_table (table3_t table_runs));
    ("table4_test_counts", Pdf_util.Csv.of_table (table4_t table_runs));
    ("table5_accidental_detection", Pdf_util.Csv.of_table (table5_t table_runs));
    ("table6_enrichment", Pdf_util.Csv.of_table (table6_t enrich_runs));
    ("table7_runtime_ratios", Pdf_util.Csv.of_table (table7_t table_runs));
  ]

(* ------------------------------------------------------------------ *)

let paper_reference () =
  let buf = Buffer.create 4096 in
  let add s = Buffer.add_string buf s in
  add "Published values (Pomeranz & Reddy, DATE 2002) for comparison:\n\n";
  let t2 =
    Table.create ~title:"Paper Table 2 (s1423)"
      [ ("i", Table.Right); ("L_i", Table.Right); ("N_p(L_i)", Table.Right) ]
  in
  List.iteri
    (fun i (l, np) ->
      Table.add_row t2 [ string_of_int i; string_of_int l; string_of_int np ])
    Paper_data.table_2;
  add (Table.render t2);
  add "\n";
  let t3 =
    Table.create ~title:"Paper Table 3 (P0 detected)"
      (("circuit", Table.Left) :: ("i0", Table.Right)
      :: ("P0 flts", Table.Right)
      :: List.map (fun h -> (h, Table.Right)) heuristic_columns)
  in
  let t4 =
    Table.create ~title:"Paper Table 4 (P0 tests)"
      (("circuit", Table.Left) :: ("i0", Table.Right)
      :: List.map (fun h -> (h, Table.Right)) heuristic_columns)
  in
  List.iter
    (fun (r : Paper_data.basic_row) ->
      let a, b, c, d = r.Paper_data.detected in
      Table.add_row t3
        [ r.Paper_data.circuit; string_of_int r.Paper_data.i0;
          string_of_int r.Paper_data.p0_faults; string_of_int a;
          string_of_int b; string_of_int c; string_of_int d ];
      let a, b, c, d = r.Paper_data.tests in
      Table.add_row t4
        [ r.Paper_data.circuit; string_of_int r.Paper_data.i0;
          string_of_int a; string_of_int b; string_of_int c; string_of_int d ])
    Paper_data.tables_3_4;
  add (Table.render t3);
  add "\n";
  add (Table.render t4);
  add "\n";
  let t5 =
    Table.create ~title:"Paper Table 5 (P0 u P1 detected by basic test sets)"
      (("circuit", Table.Left) :: ("P0,P1 flts", Table.Right)
      :: List.map (fun h -> (h, Table.Right)) heuristic_columns)
  in
  List.iter
    (fun (r : Paper_data.sim_row) ->
      let a, b, c, d = r.Paper_data.detected in
      Table.add_row t5
        [ r.Paper_data.circuit; string_of_int r.Paper_data.p_faults;
          string_of_int a; string_of_int b; string_of_int c; string_of_int d ])
    Paper_data.table_5;
  add (Table.render t5);
  add "\n";
  let t6 =
    Table.create ~title:"Paper Table 6 (enrichment)"
      [
        ("circuit", Table.Left); ("i0", Table.Right);
        ("P0 total", Table.Right); ("P0 det", Table.Right);
        ("P0,P1 total", Table.Right); ("P0,P1 det", Table.Right);
        ("tests", Table.Right);
      ]
  in
  List.iter
    (fun (r : Paper_data.enrich_row) ->
      Table.add_row t6
        [
          r.Paper_data.circuit; string_of_int r.Paper_data.i0;
          string_of_int r.Paper_data.p0_total;
          string_of_int r.Paper_data.p0_detected;
          string_of_int r.Paper_data.p_total;
          string_of_int r.Paper_data.p_detected;
          string_of_int r.Paper_data.tests;
        ])
    Paper_data.table_6;
  add (Table.render t6);
  add "\n";
  let t7 =
    Table.create ~title:"Paper Table 7 (run time ratios)"
      [ ("circuit", Table.Left); ("ratio", Table.Right) ]
  in
  List.iter
    (fun (name, ratio) ->
      Table.add_row t7 [ name; Printf.sprintf "%.2f" ratio ])
    Paper_data.table_7;
  add (Table.render t7);
  Buffer.contents buf
