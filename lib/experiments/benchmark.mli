(** Unified benchmark harness (DESIGN.md §11).

    One report type, one JSON schema, one measurement discipline for
    every [BENCH_*.json] the repository emits.  Workloads are grouped
    into named {e suites} ([fault_sim], [atpg], [paths], [justify],
    [kernels]); each suite expands a {!params} record into timed
    {!case}s, every case is measured by {!Pdf_obs.Bstat.measure}
    (warmup, calibrated inner loop, N repetitions, GC telemetry) and
    summarised with IQR outlier rejection, and the per-case medians and
    throughputs are pushed into the {!Pdf_obs.Metrics} registry as
    gauges so [--metrics-out]/[--prom-out] export them alongside the
    pipeline counters.

    A report can be compared against a previously written baseline
    report ({!compare_with_baseline}): the comparison uses the
    noise-aware {!Pdf_obs.Bstat.compare_medians} verdict, which is what
    the CI regression gate ([pdfatpg bench --compare --max-regress])
    exits non-zero on. *)

(** Workload sizing shared by the suites.  Every figure is deterministic
    (seeded); only wall-clock and GC readings vary between runs. *)
type params = {
  circuits : Pdf_synth.Profiles.t list;
      (** circuits to expand per-circuit cases over *)
  n_tests : int;  (** random two-pattern tests for simulation workloads *)
  n_p : int;  (** enumeration budget [N_P] *)
  n_p0 : int;  (** primary-set threshold [N_P0] *)
  seed : int;
}

val default_params : params
(** [circuits = [b03; b09; s641]], [n_tests = 126], [n_p = 400],
    [n_p0 = 80], [seed = 2002] — the smoke tier: seconds, not minutes. *)

val profiles_of_spec : string -> (Pdf_synth.Profiles.t list, string) result
(** Parse a comma-separated profile-name list (the [--circuits] syntax
    shared by the CLI and the bench executables).  [""] selects
    {!default_params}' circuits. *)

(** One timed workload.  [units] names the work one execution performs
    (e.g. [("faults", 377.)]); each entry becomes a
    [<unit>_per_s] throughput figure. *)
type case = {
  case_name : string;  (** e.g. ["b09/detect_matrix"] *)
  units : (string * float) list;
  thunk : unit -> unit;
}

type suite = {
  suite_name : string;
  suite_doc : string;
  cases : params -> case list;
      (** may raise [Failure] — the [fault_sim] suite hard-fails when the
          packed and scalar engines disagree, keeping the CI equivalence
          smoke contract of the old standalone bench *)
}

val suites : suite list
val find_suite : string -> suite option

type result = {
  r_case : string;
  r_units : (string * float) list;
  r_meas : Pdf_obs.Bstat.measurement;
  r_stats : Pdf_obs.Bstat.summary;
}

val throughput : result -> (string * float) list
(** [("faults_per_s", units/median), ...]; empty when the median is 0. *)

type report = {
  suite : string;
  fingerprint : Pdf_obs.Fingerprint.t;
  warmup : int;
  repeat : int;
  min_sample_s : float;
  params : params;
  results : result list;
}

val run_suite :
  ?warmup:int ->
  ?repeat:int ->
  ?min_sample_s:float ->
  ?params:params ->
  ?progress:(string -> unit) ->
  suite ->
  report
(** Measure every case of the suite (defaults: [warmup = 1],
    [repeat = 5], [min_sample_s = 0.01], {!default_params}).  After each
    case the gauges [bench.<suite>.<case>.median_s],
    [....<unit>_per_s], [....minor_collections],
    [....major_collections] and [....promoted_words] are set in the
    default metrics registry.  [progress] receives one line per
    completed case. *)

val to_json : report -> string
(** The unified benchmark schema, [pdf-bench-report/1]:
    top-level [schema], [suite], [fingerprint] (see
    {!Pdf_obs.Fingerprint}), [config] (warmup/repeat/min_sample_s and
    the {!params}) and [cases]; each case carries its deterministic
    [units], the raw [samples]/[iters], the summary statistics, [gc]
    telemetry and derived [throughput]. *)

val write_report : report -> string -> unit

val to_table : report -> Pdf_util.Table.t
(** Human-readable per-case summary (median, noise, GC, throughput). *)

val comparable_projection : Pdf_obs.Json_text.v -> Pdf_obs.Json_text.v
(** Strip every timing-derived field ([samples], [iters], summary
    statistics, [gc], [throughput], [outliers]) from a parsed report,
    keeping the deterministic skeleton — two runs of the same suite on
    the same tree project to identical values (the determinism guard in
    [test/test_bench.ml]). *)

(** {2 Baseline comparison} *)

type delta = {
  d_case : string;
  base_median_s : float;
  cur_median_s : float;
  base_noise_pct : float;
  cur_noise_pct : float;
  verdict : Pdf_obs.Bstat.verdict;
}

type comparison = {
  deltas : delta list;  (** cases present on both sides, report order *)
  only_in_baseline : string list;
  only_in_current : string list;
  regressions : delta list;  (** deltas with a [Slower] verdict *)
}

val compare_with_baseline :
  max_regress_pct:float ->
  baseline:Pdf_obs.Json_text.v ->
  report ->
  (comparison, string) Stdlib.result
(** Compare a freshly measured report against a parsed baseline report
    (any file following the unified schema).  [max_regress_pct] is the
    comparator's minimum effect size: a case regresses only when its
    median slowdown exceeds both this threshold and the noise band of
    the two sample sets ({!Pdf_obs.Bstat.compare_medians}), {e and} the
    best-case sample ([min_s]) regresses beyond the threshold as well —
    transient machine load inflates medians but almost never every
    sample of a run, so a median-only slowdown is treated as
    between-run noise.  [Error] when the baseline does not carry the
    expected schema fields. *)

val comparison_table : comparison -> Pdf_util.Table.t
