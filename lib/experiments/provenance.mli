(** Provenance-enabled enrichment runs: the engine behind
    [pdfatpg explain] and [pdfatpg report].

    {!build} runs the full enrichment pipeline (target-set selection,
    preparation, two-pool generation) with a {!Pdf_obs.Ledger} attached,
    so every enumerated fault ends with exactly one disposition —
    detected (by which test and via primary / folded / accidental),
    aborted, uncovered (with the last rejection reason), or eliminated
    as undetectable (with the conflict class).  The schema is documented
    in DESIGN.md §9. *)

type t = {
  circuit : Pdf_circuit.Circuit.t;
  target_sets : Pdf_faults.Target_sets.t;
  faults : Pdf_core.Fault_sim.prepared array;
  result : Pdf_core.Atpg.result;
  ledger : Pdf_obs.Ledger.t;
}

val build :
  ?criterion:Pdf_faults.Robust.criterion ->
  ?n_p:int ->
  ?n_p0:int ->
  ?seed:int ->
  ?justify:Pdf_core.Justify.kind ->
  Pdf_circuit.Circuit.t ->
  t
(** Defaults: robust criterion, [n_p = 2000], [n_p0 = 200],
    [Workload.default_seed], [justify] per {!Pdf_core.Justify.default_kind}.
    The attached ledger is deterministic: byte-identical across [--jobs]
    values and scalar/packed simulation engines (the portfolio backend
    included — members race to completion and the winner is picked by
    fixed priority). *)

val explain : t -> string -> (string, string) result
(** [explain t query] — a human-readable account of the matching
    fault(s): [query] is a fault id (integer) or a substring of a fault
    name.  [Error] when nothing matches. *)

val why : t -> string -> (string, string) result
(** [why t query] — {!explain} plus the per-fault effort breakdown
    (runs, trials, backtracks, semantic resim-gate total charged to the
    fault across every search that targeted it) and abort forensics
    (last conflicting net with its level, deepest conflict level) read
    from the ledger's extended ["fault"] records (DESIGN.md §14).
    Same query forms and [Error] behaviour as {!explain}. *)

val report : t -> string
(** Disposition summary, an abort/reject breakdown (per failure class:
    fault count, lower-median and max justification trials and
    resim-gate totals), a per-test provenance table, and a consistency
    line checking that every enumerated fault has exactly one
    disposition. *)
