(** One-stop experiment execution for a circuit profile.

    Builds the target sets once, runs the basic procedure under every
    compaction heuristic, fault-simulates [P0 u P1] under each basic test
    set (Table 5), and runs the enrichment procedure — everything Tables
    3 through 7 need for one row. *)

type basic_run = {
  ordering : Pdf_core.Ordering.t;
  p0_detected : int;
  tests : int;
  p_detected : int;  (** of [P0 u P1], by fault simulation (Table 5) *)
  runtime_s : float;
}

type circuit_run = {
  profile : Pdf_synth.Profiles.t;
  scale : Workload.scale;
  i0 : int;
  cutoff_length : int;
  p_total : int;
  p0_total : int;
  histogram : Pdf_paths.Histogram.t;
  basics : basic_run list;  (** in {!Pdf_core.Ordering.all} order *)
  enrich_p0_detected : int;
  enrich_p_detected : int;
  enrich_tests : int;
  enrich_runtime_s : float;
  enrich_aborts : int;
}

val run :
  ?pool:Pdf_par.Pool.t ->
  ?seed:int ->
  ?with_basics:bool ->
  Workload.scale ->
  Pdf_synth.Profiles.t ->
  circuit_run
(** [run scale profile].  [with_basics] defaults to [true]; the
    resynthesized Table 6 rows only need the enrichment run (the basic
    fields are then zero/empty except the value-based run used for the
    run-time ratio).

    The basic runs under the different orderings are independent (each
    seeds its own RNG from [seed]) and execute on [pool] (default:
    {!Pdf_par.Pool.default}) — results are identical to the sequential
    run whatever the pool's job count. *)

val ratio : circuit_run -> float option
(** Table 7: enrichment run time over basic (value-based) run time.
    [None] when the value-based basic run is absent or took no
    measurable time — renderers print "n/a" instead of a NaN. *)
