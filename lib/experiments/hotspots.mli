(** Structural effort attribution: where does justification work go?

    Re-runs the provenance workload (target-set construction,
    preparation, enrichment) with a {!Pdf_obs.Attrib} store attached,
    then aggregates the merged per-net counters into hotspot views:
    a top-K hot-net table, a per-level effort histogram, a
    ["pdf-profile-report/1"] JSON document and a Perfetto counter
    track (DESIGN.md §14).

    Everything exported here is {e semantic} effort — trials, trial
    gate evaluations, full-pass resim cost, conflicts, backtracks and
    candidate-scan touches — which is defined by the search alone.
    The rendered table and the JSON are therefore byte-identical
    across [--jobs] values and the [PDF_INCSIM]/[PDF_BITSIM] engine
    toggles, and contain integers only (no floats). *)

type t = {
  circuit : Pdf_circuit.Circuit.t;
  n_p : int;
  n_p0 : int;
  seed : int;
  tests : int;  (** generated tests *)
  faults : int;  (** prepared faults *)
  detected : int;  (** faults detected by the run *)
  aborts : int;  (** primary justification aborts *)
  sheet : Pdf_obs.Attrib.sheet;  (** merged attribution snapshot *)
}

val profile :
  ?criterion:Pdf_faults.Robust.criterion ->
  ?n_p:int ->
  ?n_p0:int ->
  ?seed:int ->
  ?justify:Pdf_core.Justify.kind ->
  Pdf_circuit.Circuit.t ->
  t
(** Run the enrichment workload with attribution on and snapshot the
    merged sheet.  Defaults mirror {!Provenance.build}: [n_p = 2000],
    [n_p0 = 200], [seed = Workload.default_seed].  Also runs a
    verification fault-sim pass over the generated tests so the packed
    batch path exercises pool-side sheet merging. *)

val per_level : t -> int array
(** Semantic effort summed per circuit level; index is the level. *)

(** One row of the hotspot ranking. *)
type hot = {
  net : int;
  name : string;
  level : int;
  trials : int;
  trial_evals : int;
  resim : int;  (** full-pass resim charges to this net's cone slot *)
  conflicts : int;
  backtracks : int;
  cand_evals : int;
  total : int;  (** {!Pdf_obs.Attrib.semantic_total} for this net *)
}

val top : ?k:int -> t -> hot list
(** Hottest [k] nets by semantic total (ties by net id — a total order,
    so the ranking is deterministic).  Nets with zero effort never
    appear. *)

val render : ?k:int -> t -> string
(** Human-readable profile: run summary, justification totals,
    per-level histogram and the top-[k] hot-net table. *)

val schema_id : string
(** ["pdf-profile-report/1"]. *)

val to_json : ?k:int -> t -> string
(** The profile as a JSON document under {!schema_id}: params, run
    summary, semantic totals, [per_level] and the top-[k] [hot] rows.
    Integers and quoted names only. *)

val write_json : ?k:int -> t -> string -> unit

val counter_track : t -> Pdf_obs.Trace.t -> unit
(** Add one counter sample per circuit level to a trace collector
    (name ["<circuit> effort/level"], timestamp = level in µs), in
    level order: viewed in Perfetto the track draws the per-level
    effort histogram next to the span timeline. *)
