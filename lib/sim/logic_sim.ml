module Bit = Pdf_values.Bit
module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate

(* Arity is validated at circuit construction (Gate.min_arity), so binary
   kinds always carry at least two fanins; no defensive unary branch.  The
   [get] indirection lets callers evaluate against plain value arrays,
   overlays or any other per-net view without copying. *)
let eval_gate_get (g : Circuit.gate) get =
  let fanins = g.fanins in
  match g.kind with
  | Gate.Not -> Bit.not_ (get fanins.(0))
  | Gate.Buff -> get fanins.(0)
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let acc = ref (get fanins.(0)) in
    (match g.kind with
    | Gate.And | Gate.Nand ->
      for i = 1 to Array.length fanins - 1 do
        acc := Bit.and_ !acc (get fanins.(i))
      done
    | Gate.Or | Gate.Nor ->
      for i = 1 to Array.length fanins - 1 do
        acc := Bit.or_ !acc (get fanins.(i))
      done
    | Gate.Xor | Gate.Xnor ->
      for i = 1 to Array.length fanins - 1 do
        acc := Bit.xor !acc (get fanins.(i))
      done
    | Gate.Not | Gate.Buff -> ());
    if Gate.inverting g.kind then Bit.not_ !acc else !acc

let eval_gate (values : Bit.t array) (g : Circuit.gate) =
  eval_gate_get g (fun net -> values.(net))

let simulate (c : Circuit.t) pis =
  if Array.length pis <> c.num_pis then
    invalid_arg "Logic_sim.simulate: wrong number of PI values";
  let n = Circuit.num_nets c in
  let values = Array.make n Bit.X in
  Array.blit pis 0 values 0 c.num_pis;
  Array.iteri
    (fun i g -> values.(c.num_pis + i) <- eval_gate values g)
    c.gates;
  values

let simulate_bool c pis =
  let values = simulate c (Array.map Bit.of_bool pis) in
  Array.map
    (fun v ->
      match Bit.to_bool v with
      | Some b -> b
      | None -> assert false (* fully specified inputs => definite outputs *))
    values

let outputs (c : Circuit.t) values = Array.map (fun po -> values.(po)) c.pos
