(** Single-pattern logic simulation over three-valued logic. *)

val eval_gate_get :
  Pdf_circuit.Circuit.gate -> (int -> Pdf_values.Bit.t) -> Pdf_values.Bit.t
(** [eval_gate_get g get] evaluates gate [g] reading fanin values through
    [get].  The indirection serves callers that evaluate against an
    overlay or trial assignment rather than a plain value array; it is
    the single scalar gate evaluator shared across the code base. *)

val simulate :
  Pdf_circuit.Circuit.t -> Pdf_values.Bit.t array -> Pdf_values.Bit.t array
(** [simulate c pis] evaluates the whole circuit in one levelised pass.
    [pis] must have length [c.num_pis]; the result has one value per net
    (PIs first). *)

val simulate_bool : Pdf_circuit.Circuit.t -> bool array -> bool array
(** Fully specified two-valued convenience wrapper. *)

val outputs : Pdf_circuit.Circuit.t -> 'a array -> 'a array
(** Project a per-net array onto the primary outputs. *)
