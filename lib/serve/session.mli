(** Warm circuit sessions: the "parse + analyze once, answer many times"
    core of [pdfatpg serve] (DESIGN.md §12).

    A session owns a cache hierarchy over the read-only half of the
    pipeline:

    + {b compiled circuits} — parsing/levelizing a profile name or a
      [.bench]/[.v] netlist file, keyed by the circuit argument string;
    + {b analyses} — [Target_sets.build] plus [Fault_sim.prepare]
      (which also warms the bounded {!Pdf_faults.Robust.conditions}
      cache), keyed by [(criterion, n_p, n_p0)] per circuit;
    + {b enrichment provenances} — one full ledgered enrichment run
      ({!Pdf_experiments.Provenance.build}), keyed by
      [(criterion, n_p, n_p0, seed)] per circuit, shared by the
      [explain], [report] and [ledger] queries;
    + {b answers} — the rendered answer text of every query, keyed by
      the query's canonical parameter string.

    Queries return exactly the bytes the batch CLI prints for the same
    subcommand and flags — the determinism contract (DESIGN.md §12.4)
    that makes answer caching sound and lets CI diff served output
    against the CLI.  Answer texts therefore never contain wall-clock
    readings.

    Sessions are not thread-safe by themselves; a single mutex
    serialises every public operation, matching the server's one
    request in flight at a time FIFO discipline.  Cache effectiveness
    is observable through the [serve.session.*] counters in
    {!Pdf_obs.Metrics} (compiles/analyses/enrichments/answers, each
    with a [_hits] twin). *)

type t
(** A session: the cache hierarchy above plus its mutex. *)

val create : unit -> t

(** Query parameters shared by every analysis-backed query; mirrors the
    CLI's [--n-p]/[--n-p0]/[--seed]/[--criterion]/[--justify] flags. *)
type params = {
  n_p : int;
  n_p0 : int;
  seed : int;
  criterion : Pdf_faults.Robust.criterion;
  justify : Pdf_core.Justify.kind;
      (** justification backend for the generation half of the query;
          keys the answer and provenance caches (the analysis cache is
          backend-independent) *)
}

val default_params : params
(** [n_p = 2000], [n_p0 = 200], [Workload.default_seed], robust,
    simulation-based justification — the CLI defaults. *)

val set_default_justify : Pdf_core.Justify.kind -> unit
(** Set the server-wide default backend for requests that omit the
    protocol's ["justify"] field (the serve CLI's [--justify] flag). *)

val effective_default_justify : unit -> Pdf_core.Justify.kind
(** The default {!set_default_justify} installed, else
    {!Pdf_core.Justify.default_kind} (the [PDF_JUSTIFY] environment
    variable, else [Sim]). *)

(** Why a query could not be answered. *)
type error =
  | Unknown_circuit of string
      (** not a profile name or a parseable netlist file *)
  | No_match of string  (** an [explain] query matching no fault *)

val error_message : error -> string

(** One answered query. *)
type answer = {
  text : string;
      (** byte-identical to the batch CLI's stdout for this query *)
  tests : Pdf_core.Test_pair.t list;
      (** generated tests, for the CLI's [--dump-tests] ([[]] for
          queries that generate none) *)
  cached : bool;  (** answered from the warm answer cache *)
}

val load : t -> string -> (Pdf_circuit.Circuit.t, error) result
(** Resolve and cache a circuit: a profile name (see
    {!Pdf_synth.Profiles}), else a [.v] file, else a [.bench] file.
    Each cache miss increments [serve.session.compiles]; hits increment
    [serve.session.compile_hits]. *)

val info : t -> circuit:string -> (answer, error) result
(** The [pdfatpg info] answer: name and structural statistics. *)

val atpg :
  ?ledger:Pdf_obs.Ledger.t ->
  t ->
  circuit:string ->
  params:params ->
  ordering:Pdf_core.Ordering.t ->
  relax:bool ->
  (answer, error) result
(** The [pdfatpg atpg] answer: basic generation over [P0] (plus the
    relaxation summary when [relax]).  When [ledger] is supplied the
    pipeline runs uncached with provenance recording (the CLI's
    [--ledger-out]); the cached path is only taken for ledger-free
    queries, so an audit run always witnesses the full pipeline. *)

val enrich :
  ?ledger:Pdf_obs.Ledger.t ->
  t ->
  circuit:string ->
  params:params ->
  coverage:bool ->
  (answer, error) result
(** The [pdfatpg enrich] answer (plus the per-length coverage
    comparison table when [coverage]).  [ledger] as in {!atpg}. *)

val explain :
  t -> circuit:string -> params:params -> query:string ->
  (answer, error) result
(** The [pdfatpg explain] answer for one fault query (an id or a fault
    name substring), served from the cached enrichment provenance. *)

val why :
  t -> circuit:string -> params:params -> query:string ->
  (answer, error) result
(** The [pdfatpg why] answer: {!explain} plus the per-fault effort
    breakdown and abort forensics (DESIGN.md §14).  Shares [explain]'s
    provenance cache and query forms, so served bytes equal the CLI's. *)

val report : t -> circuit:string -> params:params -> (answer, error) result
(** The [pdfatpg report] answer: disposition summary, abort/reject
    effort breakdown, per-test provenance and consistency check. *)

val ledger_jsonl :
  t -> circuit:string -> params:params -> (answer, error) result
(** The cached enrichment run's provenance ledger as JSONL —
    byte-identical to what [pdfatpg report --ledger-out] writes for the
    same circuit and parameters (the per-request audit log). *)

val provenance :
  t -> circuit:string -> params:params ->
  (Pdf_experiments.Provenance.t, error) result
(** The cached enrichment provenance itself, for callers that need the
    structured run (the CLI's [report --ledger-out] writes its
    ledger). *)
