module Metrics = Pdf_obs.Metrics
module Prom = Pdf_obs.Prom
module Log = Pdf_obs.Log

let c_connections = Metrics.counter "serve.connections"
let c_requests = Metrics.counter "serve.requests"
let c_errors = Metrics.counter "serve.errors"
let c_bytes_out = Metrics.counter "serve.bytes_out"
let g_clients = Metrics.gauge "serve.clients"

type bind = Unix_path of string | Tcp of string * int

let bind_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type config = {
  bind : bind;
  max_clients : int;
  max_line_bytes : int;
  max_n_p : int;
  max_n_p0 : int;
  chunk_bytes : int;
}

let default_config bind =
  {
    bind;
    max_clients = 64;
    max_line_bytes = 1024 * 1024;
    max_n_p = 20000;
    max_n_p0 = 2000;
    chunk_bytes = 8192;
  }

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable closed : bool;
}

type state = {
  cfg : config;
  session : Session.t;
  listen_fd : Unix.file_descr;
  clients : (Unix.file_descr, client) Hashtbl.t;
  queue : (client * string) Queue.t;
  mutable stop : bool;
}

(* ------------------------------------------------------------------ *)
(* Low-level I/O                                                       *)
(* ------------------------------------------------------------------ *)

let close_client st client =
  if not client.closed then begin
    client.closed <- true;
    Hashtbl.remove st.clients client.fd;
    Metrics.set_int g_clients (Hashtbl.length st.clients);
    try Unix.close client.fd with Unix.Unix_error _ -> ()
  end

(* Blocking full write; a client that vanished mid-answer is closed and
   the rest of its response dropped (SIGPIPE is ignored in [run]). *)
let send_raw st client data =
  if not client.closed then
    try
      let len = String.length data in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring client.fd data !off (len - !off)
      done;
      Metrics.add c_bytes_out len
    with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      close_client st client

let send_frame st client frame = send_raw st client (frame ^ "\n")

let send_error st client ~id code msg =
  Metrics.incr c_errors;
  send_frame st client (Protocol.error_frame ~id code msg)

(* ------------------------------------------------------------------ *)
(* Answer streaming                                                    *)
(* ------------------------------------------------------------------ *)

(* Raw chunking: fixed-size slices of the answer text. *)
let split_raw ~chunk_bytes text =
  let len = String.length text in
  if len = 0 then []
  else begin
    let chunks = ref [] in
    let off = ref 0 in
    while !off < len do
      let n = min chunk_bytes (len - !off) in
      chunks := String.sub text !off n :: !chunks;
      off := !off + n
    done;
    List.rev !chunks
  end

(* Record-boundary chunking for JSONL payloads (ledger slices): each
   chunk holds whole lines only, so every chunk is independently
   parseable as JSONL. *)
let split_lines ~chunk_bytes text =
  let len = String.length text in
  let chunks = ref [] and start = ref 0 and cut = ref 0 in
  let flush upto =
    if upto > !start then begin
      chunks := String.sub text !start (upto - !start) :: !chunks;
      start := upto
    end
  in
  String.iteri
    (fun i ch ->
      if ch = '\n' then begin
        if i + 1 - !start > chunk_bytes && !cut > !start then flush !cut;
        cut := i + 1
      end)
    text;
  flush !cut;
  flush len;
  List.rev !chunks

let respond st client ~id ~req ~cached ~split text =
  let chunks = split ~chunk_bytes:st.cfg.chunk_bytes text in
  List.iteri
    (fun seq data ->
      send_frame st client (Protocol.chunk_frame ~id ~seq data))
    chunks;
  send_frame st client
    (Protocol.done_frame ~id ~req ~chunks:(List.length chunks)
       ~bytes:(String.length text) ~cached)

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let session_error = function
  | Session.Unknown_circuit msg -> (Protocol.Unknown_circuit, msg)
  | Session.No_match msg -> (Protocol.No_match, msg)

let over_budget st (p : Session.params) =
  if p.Session.n_p > st.cfg.max_n_p then
    Some
      (Printf.sprintf "n_p %d exceeds the server budget (max %d)"
         p.Session.n_p st.cfg.max_n_p)
  else if p.Session.n_p0 > st.cfg.max_n_p0 then
    Some
      (Printf.sprintf "n_p0 %d exceeds the server budget (max %d)"
         p.Session.n_p0 st.cfg.max_n_p0)
  else None

let params_of = function
  | Protocol.Atpg { params; _ }
  | Protocol.Enrich { params; _ }
  | Protocol.Explain { params; _ }
  | Protocol.Why { params; _ }
  | Protocol.Report { params; _ }
  | Protocol.Ledger { params; _ } -> Some params
  | Protocol.Ping | Protocol.Hello | Protocol.Info _ | Protocol.Metrics
  | Protocol.Shutdown -> None

let execute st client ~id req =
  let name = Protocol.request_name req in
  let answer ?(split = split_raw) r =
    match r with
    | Ok (a : Session.answer) ->
      respond st client ~id ~req:name ~cached:a.Session.cached ~split
        a.Session.text
    | Error e ->
      let code, msg = session_error e in
      send_error st client ~id code msg
  in
  match
    match params_of req with Some p -> over_budget st p | None -> None
  with
  | Some msg -> send_error st client ~id Protocol.Budget_exceeded msg
  | None -> (
    match req with
    | Protocol.Ping ->
      send_frame st client
        (Protocol.done_frame ~id ~req:name ~chunks:0 ~bytes:0 ~cached:false)
    | Protocol.Hello ->
      respond st client ~id ~req:name ~cached:false ~split:split_raw
        (Protocol.hello_text ())
    | Protocol.Metrics ->
      respond st client ~id ~req:name ~cached:false ~split:split_raw
        (Prom.render ())
    | Protocol.Info { circuit } -> answer (Session.info st.session ~circuit)
    | Protocol.Atpg { circuit; params; ordering; relax } ->
      answer (Session.atpg st.session ~circuit ~params ~ordering ~relax)
    | Protocol.Enrich { circuit; params; coverage } ->
      answer (Session.enrich st.session ~circuit ~params ~coverage)
    | Protocol.Explain { circuit; params; query } ->
      answer (Session.explain st.session ~circuit ~params ~query)
    | Protocol.Why { circuit; params; query } ->
      answer (Session.why st.session ~circuit ~params ~query)
    | Protocol.Report { circuit; params } ->
      answer (Session.report st.session ~circuit ~params)
    | Protocol.Ledger { circuit; params } ->
      answer ~split:split_lines
        (Session.ledger_jsonl st.session ~circuit ~params)
    | Protocol.Shutdown ->
      send_frame st client
        (Protocol.done_frame ~id ~req:name ~chunks:0 ~bytes:0 ~cached:false);
      st.stop <- true)

let http_header = "HTTP/1.0 200 OK\r\nContent-Type: text/plain; \
                   version=0.0.4; charset=utf-8\r\nConnection: close\r\n\r\n"

let http_not_found =
  "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nConnection: \
   close\r\n\r\nonly /metrics is served over HTTP\n"

let process st (client, line) =
  if not client.closed then
    let line = String.trim line in
    if line = "" then ()
    else if String.length line >= 4 && String.sub line 0 4 = "GET " then begin
      (* Minimal HTTP endpoint for Prometheus scrapers: serve the live
         registry and close (any header lines the client pipelined
         after the request line die with the connection). *)
      Metrics.incr c_requests;
      if String.length line >= 12 && String.sub line 0 12 = "GET /metrics" then
        send_raw st client (http_header ^ Prom.render ())
      else send_raw st client http_not_found;
      close_client st client
    end
    else
      match Protocol.parse_request line with
      | Error (id, code, msg) -> send_error st client ~id code msg
      | Ok (id, req) -> (
        Metrics.incr c_requests;
        try execute st client ~id req
        with e ->
          send_error st client ~id Protocol.Internal (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Accept / read / line framing                                        *)
(* ------------------------------------------------------------------ *)

let accept st =
  match Unix.accept st.listen_fd with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | fd, _addr ->
    let client = { fd; buf = Buffer.create 256; closed = false } in
    if Hashtbl.length st.clients >= st.cfg.max_clients then begin
      send_error st client ~id:0 Protocol.Busy
        (Printf.sprintf "server is at capacity (%d clients)"
           st.cfg.max_clients);
      client.closed <- true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else begin
      Metrics.incr c_connections;
      Hashtbl.add st.clients fd client;
      Metrics.set_int g_clients (Hashtbl.length st.clients)
    end

(* Split the client's accumulated bytes into complete lines; enqueue
   each in arrival order, keep the unterminated tail. *)
let drain_lines st client =
  let data = Buffer.contents client.buf in
  let len = String.length data in
  let start = ref 0 in
  (try
     while true do
       let nl = String.index_from data !start '\n' in
       Queue.add (client, String.sub data !start (nl - !start)) st.queue;
       start := nl + 1
     done
   with Not_found -> ());
  Buffer.clear client.buf;
  Buffer.add_substring client.buf data !start (len - !start);
  if Buffer.length client.buf > st.cfg.max_line_bytes then begin
    send_error st client ~id:0 Protocol.Line_too_long
      (Printf.sprintf "request line exceeds %d bytes" st.cfg.max_line_bytes);
    close_client st client
  end

let read_client st client =
  let bytes = Bytes.create 65536 in
  match Unix.read client.fd bytes 0 (Bytes.length bytes) with
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) ->
    close_client st client
  | 0 -> close_client st client
  | n ->
    Buffer.add_subbytes client.buf bytes 0 n;
    drain_lines st client

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let make_listen_socket bind =
  match bind with
  | Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd
  | Tcp (host, port) ->
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    fd

let run ?(session = Session.create ()) ?ready cfg =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = make_listen_socket cfg.bind in
  Unix.listen listen_fd 64;
  let st =
    {
      cfg;
      session;
      listen_fd;
      clients = Hashtbl.create 16;
      queue = Queue.create ();
      stop = false;
    }
  in
  (match ready with Some f -> f () | None -> ());
  Log.info "serve: listening on %s" (bind_to_string cfg.bind);
  while not st.stop do
    let fds =
      listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) st.clients []
    in
    (match Unix.select fds [] [] (-1.) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = listen_fd then accept st
          else
            match Hashtbl.find_opt st.clients fd with
            | Some client -> read_client st client
            | None -> ())
        readable);
    (* Fair FIFO: every request queued so far executes to completion,
       in arrival order, before the next poll. *)
    while (not st.stop) && not (Queue.is_empty st.queue) do
      process st (Queue.pop st.queue)
    done
  done;
  Hashtbl.iter (fun _ client -> close_client st client)
    (Hashtbl.copy st.clients);
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  match cfg.bind with
  | Unix_path path -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()
