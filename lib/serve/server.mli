(** The [pdfatpg serve] daemon: a Unix/TCP socket server answering
    {!Protocol} requests against one warm {!Session} (DESIGN.md §12).

    The server is a single-domain [select] loop with a fair FIFO
    scheduler: complete request lines are enqueued in arrival order
    (select round, then file-descriptor scan order within a round) and
    executed one at a time to completion, so concurrent clients share
    the session without races and answers stay deterministic.  The work
    of one request still parallelises internally — the pipeline's
    [?pool] entry points use the process default pool, so the CLI's
    [--jobs] reaches fault simulation and ATPG exactly as in batch
    mode.

    Budgets are enforced per request before any work starts:
    [max_n_p]/[max_n_p0] cap the enumeration budget (the driver of
    fold and justification cost), [max_line_bytes] bounds request
    framing, and [max_clients] bounds concurrent connections (excess
    connections receive a [busy] error frame and are closed).

    Besides the JSON protocol, a request line starting with
    [GET /metrics] receives the live Prometheus text exposition of the
    {!Pdf_obs.Metrics} registry as a plain HTTP response (and the
    connection closes) — point a Prometheus scraper or [curl] at a TCP
    bind.  Server activity is itself metered under [serve.*]
    (connections, requests, error frames, bytes out, live client
    gauge) next to the session's cache counters. *)

(** Listening address. *)
type bind =
  | Unix_path of string  (** a filesystem socket; unlinked on startup and shutdown *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val bind_to_string : bind -> string
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

type config = {
  bind : bind;
  max_clients : int;  (** concurrent connections; excess get [busy] *)
  max_line_bytes : int;  (** request-framing bound ([line_too_long]) *)
  max_n_p : int;  (** per-request cap on [n_p] ([budget_exceeded]) *)
  max_n_p0 : int;  (** per-request cap on [n_p0] *)
  chunk_bytes : int;  (** answer-streaming slice size *)
}

val default_config : bind -> config
(** [max_clients = 64], [max_line_bytes = 1 MiB], [max_n_p = 20000],
    [max_n_p0 = 2000], [chunk_bytes = 8192]. *)

val run : ?session:Session.t -> ?ready:(unit -> unit) -> config -> unit
(** Bind, listen and serve until a [shutdown] request arrives; then
    close every connection (and unlink a Unix socket path) and return.
    [ready] is called once, after the socket is listening — in-process
    harnesses use it to know when to connect.  [session] defaults to a
    fresh empty session.  Raises [Unix.Unix_error] when the bind itself
    fails (address in use, permission). *)
