module J = Pdf_obs.Json_text
module Ordering = Pdf_core.Ordering

type request =
  | Ping
  | Hello
  | Info of { circuit : string }
  | Atpg of {
      circuit : string;
      params : Session.params;
      ordering : Ordering.t;
      relax : bool;
    }
  | Enrich of { circuit : string; params : Session.params; coverage : bool }
  | Explain of { circuit : string; params : Session.params; query : string }
  | Why of { circuit : string; params : Session.params; query : string }
  | Report of { circuit : string; params : Session.params }
  | Ledger of { circuit : string; params : Session.params }
  | Metrics
  | Shutdown

let request_name = function
  | Ping -> "ping"
  | Hello -> "hello"
  | Info _ -> "info"
  | Atpg _ -> "atpg"
  | Enrich _ -> "enrich"
  | Explain _ -> "explain"
  | Why _ -> "why"
  | Report _ -> "report"
  | Ledger _ -> "ledger"
  | Metrics -> "metrics"
  | Shutdown -> "shutdown"

let protocol_version = 1

type error_code =
  | Parse_error
  | Bad_request
  | Bad_params
  | Unknown_circuit
  | No_match
  | Budget_exceeded
  | Line_too_long
  | Busy
  | Internal

let code_string = function
  | Parse_error -> "parse_error"
  | Bad_request -> "bad_request"
  | Bad_params -> "bad_params"
  | Unknown_circuit -> "unknown_circuit"
  | No_match -> "no_match"
  | Budget_exceeded -> "budget_exceeded"
  | Line_too_long -> "line_too_long"
  | Busy -> "busy"
  | Internal -> "internal"

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

exception Bad of string
exception Unknown_kind of string

let get fields k = List.assoc_opt k fields

let get_string fields k =
  match get fields k with
  | None -> None
  | Some (J.Str s) -> Some s
  | Some _ -> raise (Bad (Printf.sprintf "%S must be a string" k))

let get_int fields k =
  match get fields k with
  | None -> None
  | Some (J.Num f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> raise (Bad (Printf.sprintf "%S must be an integer" k))

let get_bool fields k =
  match get fields k with
  | None -> None
  | Some (J.Bool b) -> Some b
  | Some _ -> raise (Bad (Printf.sprintf "%S must be a boolean" k))

let require_string fields k =
  match get_string fields k with
  | Some s -> s
  | None -> raise (Bad (Printf.sprintf "missing required field %S" k))

(* Unknown fields are rejected, not ignored: a misspelt "n_p" silently
   falling back to the default would be a debugging trap in a cached,
   deterministic service. *)
let check_fields fields allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        raise (Bad (Printf.sprintf "unknown field %S" k)))
    fields

let params_fields = [ "n_p"; "n_p0"; "seed"; "criterion"; "justify" ]

let get_params fields =
  let d = Session.default_params in
  let pos k v = if v < 1 then raise (Bad (Printf.sprintf "%S must be >= 1" k)); v in
  let criterion =
    match get_string fields "criterion" with
    | None -> d.Session.criterion
    | Some s -> (
      match String.lowercase_ascii s with
      | "robust" -> Pdf_faults.Robust.Robust
      | "nonrobust" | "non-robust" -> Pdf_faults.Robust.Non_robust
      | _ -> raise (Bad (Printf.sprintf "unknown criterion %S" s)))
  in
  let justify =
    match get_string fields "justify" with
    | None -> Session.effective_default_justify ()
    | Some s -> (
      match Pdf_core.Justify.kind_of_name s with
      | Some k -> k
      | None -> raise (Bad (Printf.sprintf "unknown justify backend %S" s)))
  in
  {
    Session.n_p =
      (match get_int fields "n_p" with
      | None -> d.Session.n_p
      | Some v -> pos "n_p" v);
    n_p0 =
      (match get_int fields "n_p0" with
      | None -> d.Session.n_p0
      | Some v -> pos "n_p0" v);
    seed = Option.value ~default:d.Session.seed (get_int fields "seed");
    criterion;
    justify;
  }

let build_request kind fields =
  let base = [ "id"; "req" ] in
  let circuit () = require_string fields "circuit" in
  match kind with
  | "ping" ->
    check_fields fields base;
    Ping
  | "hello" ->
    check_fields fields base;
    Hello
  | "metrics" ->
    check_fields fields base;
    Metrics
  | "shutdown" ->
    check_fields fields base;
    Shutdown
  | "info" ->
    check_fields fields (base @ [ "circuit" ]);
    Info { circuit = circuit () }
  | "atpg" ->
    check_fields fields
      (base @ [ "circuit"; "ordering"; "relax" ] @ params_fields);
    let ordering =
      match get_string fields "ordering" with
      | None -> Ordering.Value_based
      | Some s -> (
        match Ordering.of_name s with
        | Some o -> o
        | None -> raise (Bad (Printf.sprintf "unknown ordering %S" s)))
    in
    Atpg
      {
        circuit = circuit ();
        params = get_params fields;
        ordering;
        relax = Option.value ~default:false (get_bool fields "relax");
      }
  | "enrich" ->
    check_fields fields (base @ [ "circuit"; "coverage" ] @ params_fields);
    Enrich
      {
        circuit = circuit ();
        params = get_params fields;
        coverage = Option.value ~default:false (get_bool fields "coverage");
      }
  | "explain" ->
    check_fields fields (base @ [ "circuit"; "query" ] @ params_fields);
    Explain
      {
        circuit = circuit ();
        params = get_params fields;
        query = require_string fields "query";
      }
  | "why" ->
    check_fields fields (base @ [ "circuit"; "query" ] @ params_fields);
    Why
      {
        circuit = circuit ();
        params = get_params fields;
        query = require_string fields "query";
      }
  | "report" ->
    check_fields fields (base @ [ "circuit" ] @ params_fields);
    Report { circuit = circuit (); params = get_params fields }
  | "ledger" ->
    check_fields fields (base @ [ "circuit" ] @ params_fields);
    Ledger { circuit = circuit (); params = get_params fields }
  | other -> raise (Unknown_kind other)

let parse_request line =
  match J.parse line with
  | Error msg -> Error (0, Parse_error, msg)
  | Ok (J.Obj fields) -> (
    match
      match get fields "id" with
      | None -> Ok 0
      | Some (J.Num f) when Float.is_integer f && Float.abs f < 1e15 ->
        Ok (int_of_float f)
      | Some _ -> Error "\"id\" must be an integer"
    with
    | Error msg -> Error (0, Bad_params, msg)
    | Ok id -> (
      match get fields "req" with
      | None -> Error (id, Bad_request, "missing required field \"req\"")
      | Some (J.Str kind) -> (
        try Ok (id, build_request kind fields) with
        | Unknown_kind other ->
          Error
            (id, Bad_request, Printf.sprintf "unknown request kind %S" other)
        | Bad msg -> Error (id, Bad_params, msg))
      | Some _ -> Error (id, Bad_request, "\"req\" must be a string")))
  | Ok _ -> Error (0, Parse_error, "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Response frames                                                     *)
(* ------------------------------------------------------------------ *)

let chunk_frame ~id ~seq data =
  Printf.sprintf "{\"id\":%d,\"ev\":\"chunk\",\"seq\":%d,\"data\":%s}" id seq
    (J.quote data)

let done_frame ~id ~req ~chunks ~bytes ~cached =
  Printf.sprintf
    "{\"id\":%d,\"ev\":\"done\",\"req\":%s,\"chunks\":%d,\"bytes\":%d,\"cached\":%b}"
    id (J.quote req) chunks bytes cached

let error_frame ~id code message =
  Printf.sprintf "{\"id\":%d,\"ev\":\"error\",\"code\":%s,\"message\":%s}" id
    (J.quote (code_string code))
    (J.quote message)

let hello_text () =
  Printf.sprintf "{\"server\":\"pdfatpg\",\"protocol\":%d,\"fingerprint\":%s}\n"
    protocol_version
    (J.quote
       (Pdf_obs.Fingerprint.summary_line (Pdf_obs.Fingerprint.capture ())))
