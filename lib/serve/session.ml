module Circuit = Pdf_circuit.Circuit
module Bench_io = Pdf_circuit.Bench_io
module Verilog_io = Pdf_circuit.Verilog_io
module Stats = Pdf_circuit.Stats
module Delay_model = Pdf_paths.Delay_model
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Ordering = Pdf_core.Ordering
module Coverage = Pdf_core.Coverage
module Relax = Pdf_core.Relax
module Test_pair = Pdf_core.Test_pair
module Justify = Pdf_core.Justify
module Profiles = Pdf_synth.Profiles
module Provenance = Pdf_experiments.Provenance
module Metrics = Pdf_obs.Metrics
module Ledger = Pdf_obs.Ledger
module Table = Pdf_util.Table

(* Cache-effectiveness counters.  `compiles` is the re-parse counter the
   serve tests pin to zero on warm requests; each layer has a `_hits`
   twin so hit rates are scrapeable via --metrics-out / the live
   /metrics request. *)
let c_compiles = Metrics.counter "serve.session.compiles"
let c_compile_hits = Metrics.counter "serve.session.compile_hits"
let c_analyses = Metrics.counter "serve.session.analyses"
let c_analysis_hits = Metrics.counter "serve.session.analysis_hits"
let c_enrichments = Metrics.counter "serve.session.enrichments"
let c_enrichment_hits = Metrics.counter "serve.session.enrichment_hits"
let c_answers = Metrics.counter "serve.session.answers"
let c_answer_hits = Metrics.counter "serve.session.answer_hits"

type params = {
  n_p : int;
  n_p0 : int;
  seed : int;
  criterion : Pdf_faults.Robust.criterion;
  justify : Justify.kind;
}

let default_params =
  {
    n_p = 2000;
    n_p0 = 200;
    seed = Pdf_experiments.Workload.default_seed;
    criterion = Pdf_faults.Robust.Robust;
    justify = Justify.Sim;
  }

(* The server-wide default for requests that omit the "justify" field:
   the serve CLI's [--justify] flag, else [PDF_JUSTIFY], else the
   paper's simulation-based engine.  A ref so the flag can be applied
   after module initialisation. *)
let default_justify : Justify.kind option ref = ref None

let set_default_justify k = default_justify := Some k

let effective_default_justify () =
  match !default_justify with Some k -> k | None -> Justify.default_kind ()

type error = Unknown_circuit of string | No_match of string

let error_message = function Unknown_circuit m | No_match m -> m

type answer = { text : string; tests : Test_pair.t list; cached : bool }

(* One (criterion, n_p, n_p0) analysis of a compiled circuit.  The two
   prepared-fault views are lazy: `atpg` only needs P0, `enrich` needs
   all of P, and either warms the Robust.conditions cache the other
   benefits from. *)
type analysis = {
  ts : Target_sets.t;
  faults_p : Fault_sim.prepared array Lazy.t;
  faults_p0 : Fault_sim.prepared array Lazy.t;
}

type compiled = {
  circuit : Circuit.t;
  model : Delay_model.t;
  analyses : (string, analysis) Hashtbl.t;
  provenances : (string, Provenance.t) Hashtbl.t;
}

type t = {
  circuits : (string, compiled) Hashtbl.t;
  answers : (string, answer) Hashtbl.t;
  lock : Mutex.t;
}

let create () =
  {
    circuits = Hashtbl.create 8;
    answers = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let criterion_name = function
  | Pdf_faults.Robust.Robust -> "robust"
  | Pdf_faults.Robust.Non_robust -> "nonrobust"

let params_key p =
  Printf.sprintf "%s|%d|%d" (criterion_name p.criterion) p.n_p p.n_p0

(* [justify] keys the seeded layers only: the analysis cache (target
   sets, prepared faults) is backend-independent, while generation
   answers and provenances are not. *)
let params_seed_key p =
  Printf.sprintf "%s|%d|%s" (params_key p) p.seed (Justify.kind_name p.justify)

(* Circuit resolution, shared with the CLI: a profile name, else a
   netlist file (.v -> Verilog, anything else -> .bench).  Error
   messages match the batch CLI's exactly. *)
let resolve name =
  match Profiles.find name with
  | Some p -> Ok (Profiles.circuit p)
  | None ->
    if Sys.file_exists name then
      if Filename.check_suffix name ".v" then
        match Verilog_io.parse_file name with
        | Ok c -> Ok c
        | Error e ->
          Error (Printf.sprintf "%s: %s" name (Verilog_io.error_to_string e))
      else
        match Bench_io.parse_file name with
        | Ok c -> Ok c
        | Error e ->
          Error (Printf.sprintf "%s: %s" name (Bench_io.error_to_string e))
    else
      Error
        (Printf.sprintf
           "unknown circuit %S (not a profile name or netlist file)" name)

(* ------------------------------------------------------------------ *)
(* Cache layers (callers hold the lock)                                *)
(* ------------------------------------------------------------------ *)

let compiled t name =
  match Hashtbl.find_opt t.circuits name with
  | Some comp ->
    Metrics.incr c_compile_hits;
    Ok comp
  | None -> (
    match resolve name with
    | Error msg -> Error (Unknown_circuit msg)
    | Ok circuit ->
      Metrics.incr c_compiles;
      let comp =
        {
          circuit;
          model = Delay_model.lines circuit;
          analyses = Hashtbl.create 4;
          provenances = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.circuits name comp;
      Ok comp)

let make_analysis ?ledger comp ~params =
  let ts =
    Target_sets.build ~criterion:params.criterion ?ledger comp.circuit
      comp.model ~n_p:params.n_p ~n_p0:params.n_p0
  in
  {
    ts;
    faults_p =
      lazy (Fault_sim.prepare ~criterion:params.criterion comp.circuit
              ts.Target_sets.p);
    faults_p0 =
      lazy (Fault_sim.prepare ~criterion:params.criterion comp.circuit
              ts.Target_sets.p0);
  }

let analysis ?ledger comp ~params =
  match ledger with
  | Some _ ->
    (* Audit runs must witness the full pipeline so the ledger carries
       the undetectability verdicts of the target-set filter; they never
       read the analysis cache. *)
    Metrics.incr c_analyses;
    make_analysis ?ledger comp ~params
  | None -> (
    let key = params_key params in
    match Hashtbl.find_opt comp.analyses key with
    | Some a ->
      Metrics.incr c_analysis_hits;
      a
    | None ->
      Metrics.incr c_analyses;
      let a = make_analysis comp ~params in
      Hashtbl.add comp.analyses key a;
      a)

let provenance_of comp ~params =
  let key = params_seed_key params in
  match Hashtbl.find_opt comp.provenances key with
  | Some p ->
    Metrics.incr c_enrichment_hits;
    p
  | None ->
    Metrics.incr c_enrichments;
    let p =
      Provenance.build ~criterion:params.criterion ~n_p:params.n_p
        ~n_p0:params.n_p0 ~seed:params.seed ~justify:params.justify
        comp.circuit
    in
    Hashtbl.add comp.provenances key p;
    p

(* Answer memoisation: sound because every query is deterministic in
   (circuit, params) — DESIGN.md §12.4.  Ledgered runs bypass the
   lookup (they must re-execute) but still refresh the cache. *)
let answered ?ledger t ~key compute =
  match (if ledger = None then Hashtbl.find_opt t.answers key else None) with
  | Some a ->
    Metrics.incr c_answer_hits;
    Ok { a with cached = true }
  | None -> (
    match compute () with
    | Error _ as e -> e
    | Ok a ->
      Metrics.incr c_answers;
      Hashtbl.replace t.answers key a;
      Ok a)

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let load t name = with_lock t (fun () -> Result.map (fun c -> c.circuit) (compiled t name))

let info t ~circuit:name =
  with_lock t (fun () ->
      answered t ~key:("info|" ^ name) (fun () ->
          match compiled t name with
          | Error e -> Error e
          | Ok comp ->
            let c = comp.circuit in
            Ok
              {
                text =
                  Printf.sprintf "%s: %s\n" c.Circuit.name
                    (Stats.to_string (Stats.compute c));
                tests = [];
                cached = false;
              }))

let relax_text c faults0 tests =
  let b = Buffer.create 128 in
  let total_bits = ref 0 and needed = ref 0 in
  List.iter
    (fun t ->
      let detected = Fault_sim.detected_by_test c t faults0 in
      let keep =
        Array.to_list faults0
        |> List.filteri (fun i _ -> detected.(i))
        |> List.map (fun (p : Fault_sim.prepared) -> p.Fault_sim.reqs)
      in
      let r = Relax.relax c t ~keep in
      total_bits := !total_bits + (2 * c.Circuit.num_pis);
      needed := !needed + Relax.specified_bits r)
    tests;
  if !total_bits > 0 then
    Printf.bprintf b
      "relaxation: %d of %d pattern bits needed (%.0f%% don't-care)\n"
      !needed !total_bits
      (100.
      *. float_of_int (!total_bits - !needed)
      /. float_of_int !total_bits);
  Buffer.contents b

let atpg ?ledger t ~circuit:name ~params ~ordering ~relax =
  let key =
    Printf.sprintf "atpg|%s|%s|%s|%b" name (params_seed_key params)
      (Ordering.name ordering) relax
  in
  with_lock t (fun () ->
      answered ?ledger t ~key (fun () ->
          match compiled t name with
          | Error e -> Error e
          | Ok comp ->
            let c = comp.circuit in
            let a = analysis ?ledger comp ~params in
            let faults0 = Lazy.force a.faults_p0 in
            let res =
              Atpg.basic ?ledger ~justify:params.justify c
                { Atpg.ordering; seed = params.seed }
                ~faults:faults0
            in
            let b = Buffer.create 256 in
            Printf.bprintf b
              "basic ATPG (%s): %d/%d P0 faults detected, %d tests, %d \
               aborted primaries\n"
              (Ordering.name ordering)
              (Fault_sim.count res.Atpg.detected)
              (Array.length faults0)
              (List.length res.Atpg.tests)
              res.Atpg.primary_aborts;
            if relax then
              Buffer.add_string b (relax_text c faults0 res.Atpg.tests);
            Ok { text = Buffer.contents b; tests = res.Atpg.tests;
                 cached = false }))

let enrich ?ledger t ~circuit:name ~params ~coverage =
  let key =
    Printf.sprintf "enrich|%s|%s|%b" name (params_seed_key params) coverage
  in
  with_lock t (fun () ->
      answered ?ledger t ~key (fun () ->
          match compiled t name with
          | Error e -> Error e
          | Ok comp ->
            let c = comp.circuit in
            let a = analysis ?ledger comp ~params in
            let faults = Lazy.force a.faults_p in
            let n0 = List.length a.ts.Target_sets.p0 in
            let p0 = List.init n0 (fun i -> i) in
            let p1 =
              List.init (Array.length faults - n0) (fun i -> n0 + i)
            in
            let res =
              Atpg.enrich ?ledger ~justify:params.justify c ~seed:params.seed
                ~faults ~p0 ~p1
            in
            let b = Buffer.create 256 in
            Printf.bprintf b
              "enrichment: %d/%d P0 and %d/%d P0 u P1 faults detected, %d \
               tests\n"
              (Atpg.count_detected res ~ids:p0)
              n0
              (Fault_sim.count res.Atpg.detected)
              (Array.length faults)
              (List.length res.Atpg.tests);
            if coverage then begin
              let faults0 =
                Array.of_list (List.map (fun i -> faults.(i)) p0)
              in
              let basic =
                Atpg.basic ~justify:params.justify c
                  { Atpg.ordering = Ordering.Value_based; seed = params.seed }
                  ~faults:faults0
              in
              let basic_flags =
                Fault_sim.detected_by_tests c basic.Atpg.tests faults
              in
              Buffer.add_string b
                (Table.render
                   (Coverage.comparison_table
                      ~labels:
                        [ Printf.sprintf "basic (%d tests)"
                            (List.length basic.Atpg.tests);
                          Printf.sprintf "enriched (%d tests)"
                            (List.length res.Atpg.tests) ]
                      [ Coverage.of_flags faults basic_flags;
                        Coverage.of_flags faults res.Atpg.detected ]));
              Buffer.add_char b '\n'
            end;
            Ok { text = Buffer.contents b; tests = res.Atpg.tests;
                 cached = false }))

let with_provenance t ~circuit:name ~params f =
  match compiled t name with
  | Error e -> Error e
  | Ok comp -> f (provenance_of comp ~params)

let explain t ~circuit:name ~params ~query =
  let key =
    Printf.sprintf "explain|%s|%s|%s" name (params_seed_key params) query
  in
  with_lock t (fun () ->
      answered t ~key (fun () ->
          with_provenance t ~circuit:name ~params (fun p ->
              match Provenance.explain p query with
              | Ok text -> Ok { text; tests = []; cached = false }
              | Error msg -> Error (No_match msg))))

(* [why] shares explain's provenance cache and query resolution, so a
   served answer is byte-identical to the CLI's for the same (circuit,
   params, query). *)
let why t ~circuit:name ~params ~query =
  let key =
    Printf.sprintf "why|%s|%s|%s" name (params_seed_key params) query
  in
  with_lock t (fun () ->
      answered t ~key (fun () ->
          with_provenance t ~circuit:name ~params (fun p ->
              match Provenance.why p query with
              | Ok text -> Ok { text; tests = []; cached = false }
              | Error msg -> Error (No_match msg))))

let report t ~circuit:name ~params =
  let key = Printf.sprintf "report|%s|%s" name (params_seed_key params) in
  with_lock t (fun () ->
      answered t ~key (fun () ->
          with_provenance t ~circuit:name ~params (fun p ->
              Ok { text = Provenance.report p; tests = []; cached = false })))

let provenance t ~circuit:name ~params =
  with_lock t (fun () ->
      with_provenance t ~circuit:name ~params (fun p -> Ok p))

let ledger_jsonl t ~circuit:name ~params =
  let key = Printf.sprintf "ledger|%s|%s" name (params_seed_key params) in
  with_lock t (fun () ->
      answered t ~key (fun () ->
          with_provenance t ~circuit:name ~params (fun p ->
              Ok
                {
                  text = Ledger.to_jsonl p.Provenance.ledger;
                  tests = [];
                  cached = false;
                })))
