(** The [pdfatpg serve] wire protocol: line-delimited JSON framing
    (PROTOCOL.md is the complete reference; DESIGN.md §12 the design).

    Every request is one LF-terminated JSON object carrying a ["req"]
    kind, an optional client-chosen ["id"] (echoed on every frame of
    the response, default [0]) and the kind's parameter fields.  Every
    response is a sequence of LF-terminated JSON frames for that id:
    zero or more [chunk] frames carrying slices of the answer text in
    order, closed by exactly one [done] frame — or a single [error]
    frame instead.  Parsing reuses {!Pdf_obs.Json_text}; unknown or
    ill-typed fields are rejected ([bad_params]), not ignored, so
    client typos fail loudly. *)

(** A parsed request. *)
type request =
  | Ping  (** liveness probe; answers with a bare [done] frame *)
  | Hello  (** server identification: protocol version, fingerprint *)
  | Info of { circuit : string }
  | Atpg of {
      circuit : string;
      params : Session.params;
      ordering : Pdf_core.Ordering.t;
      relax : bool;
    }
  | Enrich of { circuit : string; params : Session.params; coverage : bool }
  | Explain of { circuit : string; params : Session.params; query : string }
  | Why of { circuit : string; params : Session.params; query : string }
      (** [explain] plus per-fault effort breakdown and abort forensics
          (DESIGN.md §14); same query forms as [explain] *)
  | Report of { circuit : string; params : Session.params }
  | Ledger of { circuit : string; params : Session.params }
      (** the enrichment run's provenance ledger, streamed as JSONL
          slices split only at record boundaries *)
  | Metrics
      (** live Prometheus text exposition of the metrics registry *)
  | Shutdown

val request_name : request -> string
(** The ["req"] string of a request (["atpg"], ["report"], ...). *)

val protocol_version : int
(** Version reported by [hello] and bumped on breaking changes. *)

(** Error vocabulary of the [error] frame (PROTOCOL.md, "Error
    codes"). *)
type error_code =
  | Parse_error  (** the line is not a JSON object *)
  | Bad_request  (** unknown ["req"] kind, or ["req"] missing *)
  | Bad_params  (** unknown field, ill-typed field or invalid value *)
  | Unknown_circuit  (** not a profile name or parseable netlist file *)
  | No_match  (** an [explain] query matching no fault *)
  | Budget_exceeded  (** request exceeds the server's per-request caps *)
  | Line_too_long  (** request line exceeds the server's frame limit *)
  | Busy  (** the server is at its concurrent-client capacity *)
  | Internal  (** unexpected server-side failure *)

val code_string : error_code -> string
(** Wire spelling, e.g. ["budget_exceeded"]. *)

val parse_request :
  string -> (int * request, int * error_code * string) result
(** Parse one request line.  [Ok (id, request)] or
    [Error (id, code, message)]; the id is [0] when the line was too
    broken to extract one, so an error frame can always be
    addressed. *)

(** {2 Response frames}

    Each function renders one complete frame {e without} the trailing
    newline; the server appends it when writing. *)

val chunk_frame : id:int -> seq:int -> string -> string
(** [{"id":..,"ev":"chunk","seq":..,"data":"..."}] — [seq] starts at 0
    and increments per chunk of one response. *)

val done_frame :
  id:int -> req:string -> chunks:int -> bytes:int -> cached:bool -> string
(** [{"id":..,"ev":"done","req":"..","chunks":..,"bytes":..,
    "cached":..}] — closes a successful response; [bytes] is the total
    payload length across the [chunk] frames and [cached] reports a
    warm answer-cache hit. *)

val error_frame : id:int -> error_code -> string -> string
(** [{"id":..,"ev":"error","code":"..","message":".."}]. *)

val hello_text : unit -> string
(** The [hello] answer payload: one JSON line with the server name,
    {!protocol_version} and the environment fingerprint summary. *)
