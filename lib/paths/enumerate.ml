module Circuit = Pdf_circuit.Circuit
module Heap = Pdf_util.Heap
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log

let m_steps = Metrics.counter "enumerate.steps"
let m_completed = Metrics.counter "enumerate.paths_completed"
let m_pruned = Metrics.counter "enumerate.paths_pruned"
let m_truncated = Metrics.counter "enumerate.truncated"

type mode = Simple | Distance_pruned

type event =
  | Completed of Path.t * int
  | Evicted of Path.t * int * bool

type result = {
  paths : (Path.t * int) list;
  steps : int;
  evicted : int;
  truncated : bool;
  events : event list;
}

type entry = {
  path : Path.t;
  length : int;
  len : int; (* len(p): best possible completion length; = length if complete *)
  complete : bool;
  mutable alive : bool;
}

let sort_completes completes =
  let alive = List.filter (fun e -> e.alive) completes in
  List.map (fun e -> (e.path, e.length)) alive
  |> List.sort (fun (p1, l1) (p2, l2) ->
         if l1 <> l2 then Int.compare l2 l1 else Path.compare p1 p2)

(* Children of a partial path entry: for each fanout branch of the last
   net, a complete child when the new net is a primary output and a
   partial child when it feeds further logic and can still reach an
   output. *)
let children c (model : Delay_model.t) dist e =
  let last = Path.last_net c e.path in
  let branch = Delay_model.branch_cost model c last in
  Array.fold_left
    (fun acc (g, pin) ->
      let out = Circuit.net_of_gate c g in
      let path = Path.extend e.path { Path.gate = g; pin } in
      let length = e.length + branch + model.Delay_model.stem.(out) in
      let acc =
        if (c : Circuit.t).is_po.(out) then
          { path; length; len = length; complete = true; alive = true } :: acc
        else acc
      in
      if Array.length c.fanouts.(out) > 0 && dist.(out) > Distance.unreachable
      then
        { path; length; len = length + dist.(out); complete = false;
          alive = true }
        :: acc
      else acc)
    [] c.fanouts.(last)
  |> List.rev

let initial_entries c (model : Delay_model.t) dist =
  List.concat_map
    (fun pi ->
      let path = Path.source_only pi in
      let length = model.Delay_model.stem.(pi) in
      let complete_entry =
        if (c : Circuit.t).is_po.(pi) then
          [ { path; length; len = length; complete = true; alive = true } ]
        else []
      in
      let partial_entry =
        if Array.length c.fanouts.(pi) > 0 && dist.(pi) > Distance.unreachable
        then
          [ { path; length; len = length + dist.(pi); complete = false;
              alive = true } ]
        else []
      in
      complete_entry @ partial_entry)
    (Circuit.pis c)

(* ------------------------------------------------------------------ *)
(* Distance-pruned mode                                                 *)
(* ------------------------------------------------------------------ *)

let run_distance c model dist ~max_paths ~max_steps ~record_events =
  let partials = Heap.create ~leq:(fun a b -> a.len >= b.len) in
  let all_min = Heap.create ~leq:(fun a b -> a.len <= b.len) in
  let all_max = Heap.create ~leq:(fun a b -> a.len >= b.len) in
  let completes = ref [] in
  let alive_count = ref 0 in
  let events = ref [] in
  let evicted = ref 0 in
  let record ev = if record_events then events := ev :: !events in
  let insert e =
    incr alive_count;
    Heap.push all_min e;
    Heap.push all_max e;
    if e.complete then begin
      completes := e :: !completes;
      record (Completed (e.path, e.length))
    end
    else Heap.push partials e
  in
  let kill e =
    e.alive <- false;
    decr alive_count
  in
  let stale e = not e.alive in
  let max_alive_len () =
    match Heap.pop_while all_max stale with
    | None -> Distance.unreachable
    | Some e ->
      Heap.push all_max e;
      e.len
  in
  let evict_down () =
    let continue = ref true in
    while !alive_count >= max_paths && !continue do
      match Heap.pop_while all_min stale with
      | None -> continue := false
      | Some victim ->
        let max_len = max_alive_len () in
        (* [victim] is alive, hence counted in [max_len]. *)
        if victim.len >= max_len then begin
          Heap.push all_min victim;
          continue := false
        end
        else begin
          kill victim;
          incr evicted;
          record (Evicted (victim.path, victim.length, victim.complete))
        end
    done
  in
  List.iter insert (initial_entries c model dist);
  evict_down ();
  let steps = ref 0 in
  let truncated = ref false in
  let running = ref true in
  while !running do
    if !steps >= max_steps then begin
      truncated := true;
      running := false
    end
    else
      match Heap.pop_while partials stale with
      | None -> running := false
      | Some e ->
        incr steps;
        kill e;
        List.iter insert (children c model dist e);
        evict_down ()
  done;
  {
    paths = sort_completes !completes;
    steps = !steps;
    evicted = !evicted;
    truncated = !truncated;
    events = List.rev !events;
  }

(* ------------------------------------------------------------------ *)
(* Simple mode (paper's moderate-circuit procedure, cf. Table 1)        *)
(* ------------------------------------------------------------------ *)

let run_simple c model dist ~max_paths ~max_steps ~record_events =
  let entries : entry list ref = ref (initial_entries c model dist) in
  let events = ref [] in
  let evicted = ref 0 in
  let record ev = if record_events then events := ev :: !events in
  List.iter
    (fun e -> if e.complete then record (Completed (e.path, e.length)))
    !entries;
  let alive () = List.filter (fun e -> e.alive) !entries in
  let evict_down () =
    let continue = ref true in
    while List.length (alive ()) >= max_paths && !continue do
      let completes = List.filter (fun e -> e.complete) (alive ()) in
      match completes with
      | [] -> continue := false
      | first :: rest ->
        let min_len =
          List.fold_left (fun acc e -> min acc e.length) first.length rest
        in
        let max_len =
          List.fold_left (fun acc e -> max acc e.length) first.length rest
        in
        if min_len >= max_len then continue := false
        else begin
          let victim =
            List.find (fun e -> e.length = min_len) completes
          in
          victim.alive <- false;
          incr evicted;
          record (Evicted (victim.path, victim.length, true))
        end
    done
  in
  evict_down ();
  let steps = ref 0 in
  let truncated = ref false in
  let running = ref true in
  while !running do
    if !steps >= max_steps then begin
      truncated := true;
      running := false
    end
    else
      match List.find_opt (fun e -> e.alive && not e.complete) !entries with
      | None -> running := false
      | Some e ->
        incr steps;
        e.alive <- false;
        let kids = children c model dist e in
        List.iter
          (fun k ->
            if k.complete then record (Completed (k.path, k.length)))
          kids;
        (* Mimic the paper's list bookkeeping: the first child takes the
           parent's position, the rest are appended at the end. *)
        (match kids with
        | [] -> ()
        | first :: rest ->
          entries :=
            List.concat_map
              (fun x -> if x == e then [ first ] else [ x ])
              !entries
            @ rest);
        evict_down ()
  done;
  let completes = List.filter (fun e -> e.complete) !entries in
  {
    paths = sort_completes completes;
    steps = !steps;
    evicted = !evicted;
    truncated = !truncated;
    events = List.rev !events;
  }

let enumerate ?(mode = Distance_pruned) ?(record_events = false) ?max_steps c
    model ~max_paths =
  if max_paths <= 0 then invalid_arg "Enumerate.enumerate: max_paths <= 0";
  let max_steps =
    match max_steps with Some s -> s | None -> (100 * max_paths) + 10_000
  in
  Span.with_ "enumerate" (fun () ->
      let dist = Distance.compute c model in
      let r =
        match mode with
        | Distance_pruned ->
          run_distance c model dist ~max_paths ~max_steps ~record_events
        | Simple ->
          run_simple c model dist ~max_paths ~max_steps ~record_events
      in
      Metrics.add m_steps r.steps;
      Metrics.add m_completed (List.length r.paths);
      Metrics.add m_pruned r.evicted;
      if r.truncated then Metrics.incr m_truncated;
      Log.debug "enumerate: %d complete paths, %d steps, %d pruned%s"
        (List.length r.paths) r.steps r.evicted
        (if r.truncated then " (truncated)" else "");
      r)
