type gate = { kind : Gate.kind; fanins : int array }

type t = {
  name : string;
  num_pis : int;
  gates : gate array;
  pos : int array;
  net_names : string array;
  fanouts : (int * int) array array;
  is_po : bool array;
  level : int array;
  level_gates : int array array;
  by_name : (string, int) Hashtbl.t;
}

let num_nets t = t.num_pis + Array.length t.gates

let num_gates t = Array.length t.gates

let num_pos t = Array.length t.pos

let is_pi t net = net < t.num_pis

let net_of_gate t i = t.num_pis + i

let gate_of_net t net = if net < t.num_pis then None else Some (net - t.num_pis)

let net_name t net = t.net_names.(net)

let find_net t name = Hashtbl.find_opt t.by_name name

let fanout_count t net = Array.length t.fanouts.(net)

let depth t = Array.fold_left max 0 t.level

let level t net = t.level.(net)

let level_gates t = t.level_gates

let pis t = List.init t.num_pis (fun i -> i)

(* Group gates by the level of their output net.  Bucket [l] lists the
   gates whose output is at level [l], in ascending gate order; bucket 0
   (the PI level) is always empty.  This is the one levelized schedule
   every event-driven consumer (Wsim.Inc, Inc_sim) walks — computed and
   asserted here so no simulator recomputes or silently assumes it. *)
let group_by_level ~num_pis ~(gates : gate array) (level : int array) =
  let d = Array.fold_left max 0 level in
  let counts = Array.make (d + 1) 0 in
  Array.iteri
    (fun i _ ->
      let l = level.(num_pis + i) in
      counts.(l) <- counts.(l) + 1)
    gates;
  let buckets = Array.init (d + 1) (fun l -> Array.make counts.(l) 0) in
  let fill = Array.make (d + 1) 0 in
  Array.iteri
    (fun i _ ->
      let l = level.(num_pis + i) in
      buckets.(l).(fill.(l)) <- i;
      fill.(l) <- fill.(l) + 1)
    gates;
  buckets

let unsafe_make ~name ~num_pis ~gates ~pos ~net_names =
  let n = num_pis + Array.length gates in
  if Array.length net_names <> n then
    invalid_arg "Circuit.unsafe_make: net_names length mismatch";
  let fanout_lists = Array.make n [] in
  let level = Array.make n 0 in
  Array.iteri
    (fun i g ->
      let out = num_pis + i in
      let lvl = ref 0 in
      Array.iteri
        (fun pin fanin ->
          if fanin < 0 || fanin >= out then
            invalid_arg
              (Printf.sprintf
                 "Circuit.unsafe_make: gate %d reads net %d, not topological"
                 i fanin);
          fanout_lists.(fanin) <- (i, pin) :: fanout_lists.(fanin);
          lvl := max !lvl level.(fanin))
        g.fanins;
      level.(out) <- !lvl + 1)
    gates;
  (* The levelized invariant, asserted once for every consumer: each
     fanin lives strictly below its gate's output level.  It follows
     from the topological check above, but stating it here makes the
     construction the single point where level order is trusted. *)
  Array.iteri
    (fun i g ->
      let out = num_pis + i in
      Array.iter
        (fun fanin ->
          if level.(fanin) >= level.(out) then
            invalid_arg
              (Printf.sprintf
                 "Circuit.unsafe_make: gate %d breaks the levelized order"
                 i))
        g.fanins)
    gates;
  Array.iter
    (fun po ->
      if po < 0 || po >= n then
        invalid_arg "Circuit.unsafe_make: PO net out of range")
    pos;
  let fanouts = Array.map (fun l -> Array.of_list (List.rev l)) fanout_lists in
  let is_po = Array.make n false in
  Array.iter (fun po -> is_po.(po) <- true) pos;
  let by_name = Hashtbl.create n in
  Array.iteri (fun net nm -> Hashtbl.replace by_name nm net) net_names;
  let level_gates = group_by_level ~num_pis ~gates level in
  {
    name; num_pis; gates; pos; net_names; fanouts; is_po; level;
    level_gates; by_name;
  }

let validate t =
  let n = num_nets t in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    Array.iteri
      (fun i g ->
        let out = t.num_pis + i in
        if Array.length g.fanins < Gate.min_arity g.kind then
          raise (Bad (Printf.sprintf "gate %d: arity too small" i));
        Array.iteri
          (fun pin fanin ->
            if fanin < 0 || fanin >= out then
              raise (Bad (Printf.sprintf "gate %d: non-topological fanin" i));
            let found =
              Array.exists (fun (g', p') -> g' = i && p' = pin) t.fanouts.(fanin)
            in
            if not found then
              raise (Bad (Printf.sprintf "net %d: missing fanout entry" fanin)))
          g.fanins;
        let expect =
          1 + Array.fold_left (fun acc f -> max acc t.level.(f)) 0 g.fanins
        in
        if t.level.(out) <> expect then
          raise (Bad (Printf.sprintf "net %d: wrong level" out)))
      t.gates;
    Array.iter
      (fun po ->
        if po < 0 || po >= n then raise (Bad "PO out of range");
        if not t.is_po.(po) then raise (Bad "is_po inconsistent"))
      t.pos;
    (* The level buckets must partition the gates, bucket for bucket. *)
    if Array.length t.level_gates <> depth t + 1 then
      raise (Bad "level_gates: wrong bucket count");
    let seen = Array.make (Array.length t.gates) false in
    Array.iteri
      (fun l bucket ->
        Array.iter
          (fun g ->
            if g < 0 || g >= Array.length t.gates then
              raise (Bad "level_gates: gate out of range");
            if t.level.(t.num_pis + g) <> l then
              raise (Bad (Printf.sprintf "level_gates: gate %d in bucket %d" g l));
            if seen.(g) then
              raise (Bad (Printf.sprintf "level_gates: gate %d duplicated" g));
            seen.(g) <- true)
          bucket)
      t.level_gates;
    if not (Array.for_all Fun.id seen) then
      raise (Bad "level_gates: missing gate");
    Ok ()
  with Bad msg -> fail "%s: %s" t.name msg
