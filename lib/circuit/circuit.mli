(** Levelised combinational circuit.

    Nets are integers: nets [0 .. num_pis - 1] are the primary inputs, and
    net [num_pis + i] is the output of gate [i].  Gates are stored in
    topological order, so a single left-to-right pass over [gates] is a
    valid evaluation order.

    Following the paper, a circuit "line" is either a stem (a net) or a
    fanout branch of a net; branches are identified by the (gate, pin) pair
    that consumes them.  Logic values live on nets — a branch always carries
    the value of its stem. *)

type gate = { kind : Gate.kind; fanins : int array }

type t = private {
  name : string;
  num_pis : int;
  gates : gate array;
  pos : int array;  (** primary-output nets, in declaration order *)
  net_names : string array;
  fanouts : (int * int) array array;
      (** per net, the [(gate, pin)] pairs that consume it *)
  is_po : bool array;
  level : int array;  (** per net; PIs are level 0 *)
  level_gates : int array array;
      (** gates grouped by output-net level: bucket [l] lists the gates
          whose output is at level [l], ascending gate order; bucket 0
          is empty (PIs).  The levelized schedule shared by every
          event-driven simulator — see {!level_gates}. *)
  by_name : (string, int) Hashtbl.t;
}

val num_nets : t -> int

val num_gates : t -> int

val num_pos : t -> int

val is_pi : t -> int -> bool

val net_of_gate : t -> int -> int
(** Net driven by gate [i]. *)

val gate_of_net : t -> int -> int option
(** Index of the driving gate, or [None] for a PI. *)

val net_name : t -> int -> string

val find_net : t -> string -> int option

val fanout_count : t -> int -> int

val depth : t -> int
(** Maximum net level. *)

val level : t -> int -> int
(** Topological level of a net: 0 for PIs, [1 + max fanin level] for a
    gate output.  Computed and asserted once in {!unsafe_make} (every
    fanin is strictly below its gate), so consumers — [Logic_sim],
    [Wsim], [Wsim.Inc], [Inc_sim], [Timing]'s initial settle — rely on
    this single construction-time check instead of re-deriving or
    implicitly trusting gate order. *)

val level_gates : t -> int array array
(** The validated per-level gate buckets ([level_gates] field):
    evaluating bucket 1, then 2, ... re-evaluates every gate after all
    its fanins — the worklist schedule of the incremental simulators.
    Re-checked by {!validate}. *)

val pis : t -> int list

val validate : t -> (unit, string) result
(** Structural sanity check (used by tests): topological order, fanout
    tables consistent with fanins, levels correct, POs in range. *)

(** Construction is done through {!Builder}; this signature keeps the
    representation transparent but read-only ([private]). *)

val unsafe_make :
  name:string ->
  num_pis:int ->
  gates:gate array ->
  pos:int array ->
  net_names:string array ->
  t
(** Used by {!Builder} after topological sorting; computes fanouts, levels
    and the name index.  Raises [Invalid_argument] if a gate reads a net
    that is not yet defined at its position (i.e. the order is not
    topological) or on any index out of range. *)
